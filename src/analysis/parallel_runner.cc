#include "analysis/parallel_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/chunk_queue.hh"
#include "common/logging.hh"

namespace tea {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Environment unsigned with a default (fatal on garbage). */
unsigned long long
envCount(const char *name, unsigned long long dflt)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return dflt;
    char *end = nullptr;
    unsigned long long n = std::strtoull(v, &end, 10);
    if (end == v || *end)
        tea_fatal("%s must be a non-negative integer, got '%s'", name, v);
    return n;
}

} // namespace

RunnerOptions
RunnerOptions::fromEnv()
{
    RunnerOptions opts;
    unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    // Default: one replay worker per hardware thread (results are
    // identical at any thread count, so this is purely a speed knob).
    auto threads =
        static_cast<unsigned>(envCount("TEA_THREADS", hw));
    opts.threads = threads == 0 ? hw : threads;
    opts.chunkEvents = static_cast<std::size_t>(
        envCount("TEA_CHUNK_EVENTS", opts.chunkEvents));
    opts.queueChunks = static_cast<std::size_t>(
        envCount("TEA_QUEUE_CHUNKS", opts.queueChunks));
    tea_assert(opts.chunkEvents >= 1, "TEA_CHUNK_EVENTS must be >= 1");
    tea_assert(opts.queueChunks >= 1, "TEA_QUEUE_CHUNKS must be >= 1");
    return opts;
}

ReplayStats
replayThroughPool(const std::vector<SinkGroup> &groups,
                  const RunnerOptions &opts,
                  const std::function<void(TraceSink &)> &produce)
{
    ReplayStats stats;
    const unsigned workers = static_cast<unsigned>(std::max<std::size_t>(
        1, std::min<std::size_t>(opts.threads, groups.size())));
    stats.threads = workers;
    stats.workers.resize(workers);

    BroadcastQueue<TraceChunkPtr> queue(std::max<std::size_t>(
                                            1, opts.queueChunks),
                                        workers);

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
            // Round-robin share of the observer groups; sinks of one
            // group stay together so each observer sees the trace
            // in order on a single thread.
            std::vector<TraceSink *> sinks;
            unsigned my_groups = 0;
            for (std::size_t g = w; g < groups.size();
                 g += workers) {
                sinks.insert(sinks.end(), groups[g].sinks.begin(),
                             groups[g].sinks.end());
                ++my_groups;
            }
            ReplayWorkerStats &ws = stats.workers[w];
            ws.workerId = w;
            ws.sinkGroups = my_groups;
            const auto t0 = Clock::now();
            TraceChunkPtr chunk;
            while (queue.pop(w, chunk)) {
                ++ws.chunksConsumed;
                ws.eventsReplayed += chunk->events.size();
                ws.cyclesReplayed += replayChunk(*chunk, sinks);
                chunk.reset();
            }
            ws.replaySeconds = secondsSince(t0);
            ws.queueEmptyWaits = queue.emptyWaits(w);
        });
    }

    const auto start = Clock::now();
    {
        ChunkingSink sink(opts.chunkEvents, [&](TraceChunkPtr c) {
            queue.push(std::move(c));
        });
        produce(sink);
        sink.finish();
        stats.chunksProduced = sink.chunksEmitted();
        stats.eventsCaptured = sink.eventsCaptured();
    }
    stats.simulateSeconds = secondsSince(start);
    queue.close();
    for (std::thread &t : pool)
        t.join();
    stats.totalSeconds = secondsSince(start);
    stats.queueFullStalls = queue.fullWaits();
    return stats;
}

ExperimentResult
runWorkload(Workload workload, std::vector<SamplerConfig> techniques,
            const RunnerOptions &opts, const CoreConfig &cfg)
{
    if (opts.threads <= 1) {
        // Serial path: observers attached directly to the live core,
        // bit-for-bit the historical behaviour.
        return runWorkload(std::move(workload), std::move(techniques),
                           cfg);
    }

    ExperimentResult res;
    res.name = workload.program.name();
    res.golden = std::make_unique<GoldenReference>();

    std::vector<std::unique_ptr<TechniqueSampler>> samplers;
    samplers.reserve(techniques.size());
    for (SamplerConfig &tc : techniques)
        samplers.push_back(std::make_unique<TechniqueSampler>(tc));

    // One observer group per technique plus the golden reference: the
    // unit of replay parallelism.
    std::vector<SinkGroup> groups;
    groups.reserve(samplers.size() + 1);
    groups.push_back(SinkGroup{{res.golden.get()}});
    for (auto &s : samplers)
        groups.push_back(SinkGroup{{s.get()}});

    Core core(cfg, workload.program, std::move(workload.initial));
    res.replay = replayThroughPool(groups, opts, [&](TraceSink &sink) {
        core.addSink(&sink);
        core.run();
    });

    res.stats = core.stats();
    for (auto &s : samplers) {
        res.techniques.push_back(TechniqueResult{
            s->config(), s->pics(), s->samplesTaken(),
            s->samplesDropped()});
    }
    res.program = std::move(workload.program);
    return res;
}

ExperimentResult
runBenchmark(const std::string &name, std::vector<SamplerConfig> techniques,
             const RunnerOptions &opts, const CoreConfig &cfg)
{
    return runWorkload(workloads::byName(name), std::move(techniques),
                       opts, cfg);
}

std::vector<ExperimentResult>
runBenchmarkSuite(const std::vector<std::string> &names,
                  const std::vector<SamplerConfig> &techniques,
                  const RunnerOptions &opts, const CoreConfig &cfg)
{
    std::vector<ExperimentResult> results(names.size());
    const unsigned workers = static_cast<unsigned>(std::max<std::size_t>(
        1, std::min<std::size_t>(opts.threads, names.size())));
    if (workers <= 1) {
        for (std::size_t i = 0; i < names.size(); ++i)
            results[i] = runBenchmark(names[i], techniques, cfg);
        return results;
    }

    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
            for (std::size_t i = next.fetch_add(1); i < names.size();
                 i = next.fetch_add(1)) {
                // Each experiment is the serial in-process path:
                // fully independent simulation, bit-identical result.
                results[i] = runBenchmark(names[i], techniques, cfg);
            }
        });
    }
    for (std::thread &t : pool)
        t.join();
    return results;
}

} // namespace tea
