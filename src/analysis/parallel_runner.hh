/**
 * @file
 * Parallel out-of-band trace replay engine.
 *
 * One simulation produces the cycle trace exactly once; the trace is
 * captured in chunks (core/trace_buffer) and broadcast through a bounded
 * SPMC queue (common/chunk_queue) to a pool of replay workers. Each
 * worker owns a disjoint subset of the observer groups (the golden
 * reference and one group per sampling technique) and replays every
 * chunk through them in capture order, so each observer sees the exact
 * event sequence a live run would have delivered — the determinism that
 * makes single-run, many-technique evaluation sound (TEA §4) — while
 * techniques are scored concurrently.
 *
 * This is the engine behind runWorkload()/runBenchmark() when
 * RunnerOptions::threads > 1; the lower-level entry points here are for
 * callers that bring their own TraceSinks.
 */

#ifndef TEA_ANALYSIS_PARALLEL_RUNNER_HH
#define TEA_ANALYSIS_PARALLEL_RUNNER_HH

#include <functional>
#include <vector>

#include "analysis/runner.hh"
#include "common/stats.hh"
#include "core/trace_buffer.hh"

namespace tea {

/**
 * A group of TraceSinks that must observe the trace in order on one
 * thread (e.g. one technique's sampler, or the golden reference).
 * Groups are the unit of parallelism: two groups may replay on
 * different workers, sinks within a group never do.
 */
struct SinkGroup
{
    std::vector<TraceSink *> sinks;
};

/** Callback that hands one finished chunk to the replay pool. */
using ChunkPush = std::function<void(TraceChunkPtr)>;

/**
 * Core of the replay engine: broadcasts every chunk handed to the push
 * callback to min(threads, groups) workers, each driving a round-robin
 * share of @p groups. Blocks until @p pump returns and all workers
 * drain. The chunk source is abstract so three producers share one
 * engine: a live simulation (replayThroughPool), a simulation teeing
 * into a trace-cache writer, and a memory-mapped cached trace being
 * decoded (no simulation at all).
 *
 * @param groups observer groups (each replayed in-order on one worker)
 * @param opts thread count / chunking / backpressure knobs
 * @param pump called once with the push callback; must deliver every
 *        chunk of the trace through it, in capture order
 * @return counters describing the run; simulateSeconds holds the time
 *         spent inside @p pump, replaySeconds the slowest worker
 */
ReplayStats replayChunksThroughPool(
    const std::vector<SinkGroup> &groups, const RunnerOptions &opts,
    const std::function<void(const ChunkPush &)> &pump);

/**
 * Replay worker pool fed by a live producer: wraps @p produce's sink in
 * a ChunkingSink and pumps the chunks through replayChunksThroughPool.
 *
 * @param produce called with a TraceSink; must generate the full trace
 *        into it (typically by running a Core with the sink attached)
 */
ReplayStats replayThroughPool(
    const std::vector<SinkGroup> &groups, const RunnerOptions &opts,
    const std::function<void(TraceSink &)> &produce);

/**
 * One experiment of a suite run: a workload factory plus the core
 * configuration to simulate it on. The factory (rather than a
 * materialized Workload) keeps a many-hundred-experiment sweep from
 * holding every program and initial heap image in memory at once — a
 * workload is built on the worker that runs it and freed with the
 * result.
 */
struct SuiteExperiment
{
    std::string name;                 ///< experiment (result/report) name
    std::function<Workload()> make;   ///< builds the workload to run
    CoreConfig cfg;                   ///< core configuration to run under
};

/**
 * Run many experiments concurrently: the fig 5/8/9 and sweep shape
 * (many (workload, config) pairs × a fixed technique set). Up to
 * opts.threads experiments are in flight at a time; each experiment
 * runs its observers serially in-process (the threads=1 path), so every
 * result is bit-identical to a serial loop — experiments are fully
 * independent simulations, which makes this the better-scaling axis
 * whenever there are more experiments than observer groups per
 * experiment.
 *
 * @return results in the order of @p experiments
 */
std::vector<ExperimentResult> runExperimentSuite(
    const std::vector<SuiteExperiment> &experiments,
    const std::vector<SamplerConfig> &techniques,
    const RunnerOptions &opts = RunnerOptions{});

/**
 * Convenience wrapper over runExperimentSuite: every named suite
 * benchmark (workloads::byName) under one shared core configuration.
 *
 * @return results in the order of @p names
 */
std::vector<ExperimentResult> runBenchmarkSuite(
    const std::vector<std::string> &names,
    const std::vector<SamplerConfig> &techniques,
    const RunnerOptions &opts = RunnerOptions{},
    const CoreConfig &cfg = CoreConfig{});

/**
 * Per-experiment error report of a suite run: one line per failed
 * experiment, empty string when every experiment succeeded.
 */
std::string renderSuiteErrors(const std::vector<ExperimentResult> &results);

/**
 * main()-tail for suite tools: print renderSuiteErrors to stderr and
 * return 1 when any experiment failed, 0 otherwise — a degraded suite
 * run must not exit 0 and look healthy to scripts.
 */
int suiteExitCode(const std::vector<ExperimentResult> &results);

} // namespace tea

#endif // TEA_ANALYSIS_PARALLEL_RUNNER_HH
