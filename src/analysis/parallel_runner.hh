/**
 * @file
 * Parallel out-of-band trace replay engine.
 *
 * One simulation produces the cycle trace exactly once; the trace is
 * captured in chunks (core/trace_buffer) and broadcast through a bounded
 * SPMC queue (common/chunk_queue) to a pool of replay workers. Each
 * worker owns a disjoint subset of the observer groups (the golden
 * reference and one group per sampling technique) and replays every
 * chunk through them in capture order, so each observer sees the exact
 * event sequence a live run would have delivered — the determinism that
 * makes single-run, many-technique evaluation sound (TEA §4) — while
 * techniques are scored concurrently.
 *
 * This is the engine behind runWorkload()/runBenchmark() when
 * RunnerOptions::threads > 1; the lower-level entry points here are for
 * callers that bring their own TraceSinks.
 */

#ifndef TEA_ANALYSIS_PARALLEL_RUNNER_HH
#define TEA_ANALYSIS_PARALLEL_RUNNER_HH

#include <functional>
#include <vector>

#include "analysis/runner.hh"
#include "common/stats.hh"
#include "core/trace_buffer.hh"

namespace tea {

/**
 * A group of TraceSinks that must observe the trace in order on one
 * thread (e.g. one technique's sampler, or the golden reference).
 * Groups are the unit of parallelism: two groups may replay on
 * different workers, sinks within a group never do.
 */
struct SinkGroup
{
    std::vector<TraceSink *> sinks;
};

/**
 * Replay worker pool: broadcasts chunks produced by @c produce to
 * min(threads, groups) workers, each driving a round-robin share of
 * @p groups. Blocks until the producer finishes and all workers drain.
 *
 * @param groups observer groups (each replayed in-order on one worker)
 * @param opts thread count / chunking / backpressure knobs
 * @param produce called with a ChunkingSink-compatible TraceSink; must
 *        generate the full trace into it (typically by running a Core
 *        with the sink attached)
 * @return counters describing the run (workers, stalls, throughput)
 */
ReplayStats replayThroughPool(
    const std::vector<SinkGroup> &groups, const RunnerOptions &opts,
    const std::function<void(TraceSink &)> &produce);

/**
 * Run many benchmarks concurrently: the fig 5/8/9 shape (many workloads
 * × a fixed technique set). Up to opts.threads experiments are in
 * flight at a time; each experiment runs its observers serially
 * in-process (the threads=1 path), so every result is bit-identical to
 * a serial `for (name : names) runBenchmark(name, techniques)` loop —
 * experiments are fully independent simulations, which makes this the
 * better-scaling axis whenever there are more workloads than observer
 * groups per workload.
 *
 * @return results in the order of @p names
 */
std::vector<ExperimentResult> runBenchmarkSuite(
    const std::vector<std::string> &names,
    const std::vector<SamplerConfig> &techniques,
    const RunnerOptions &opts = RunnerOptions{},
    const CoreConfig &cfg = CoreConfig{});

} // namespace tea

#endif // TEA_ANALYSIS_PARALLEL_RUNNER_HH
