#include "analysis/audit.hh"

#include <cmath>

#include "common/logging.hh"
#include "profilers/golden.hh"

namespace tea {

namespace {

/** Collected-violation cap: keep pathological traces bounded. */
constexpr std::size_t maxCollected = 1024;

} // namespace

InvariantAuditor::InvariantAuditor(Mode mode) : mode_(mode) {}

void
InvariantAuditor::report(const std::string &msg)
{
    if (mode_ == Mode::FailFast)
        tea_fatal("TEA audit: %s", msg.c_str());
    if (violations_.size() < maxCollected)
        violations_.push_back(msg);
}

bool
InvariantAuditor::checkPsv(const Psv &psv, const char *what, Cycle cycle,
                           SeqNum seq)
{
    if ((psv.bits() >> numEvents) == 0)
        return true;
    report(strprintf("illegal PSV bits 0x%x on %s (cycle %llu, seq "
                     "%llu): beyond the %u architectural events",
                     psv.bits(), what,
                     static_cast<unsigned long long>(cycle),
                     static_cast<unsigned long long>(seq), numEvents));
    return false;
}

void
InvariantAuditor::onCycle(const CycleRecord &rec)
{
    ++events_;
    ++cycles_;
    if (sawEnd_) {
        report(strprintf("cycle record %llu after the end marker "
                         "(end cycle %llu)",
                         static_cast<unsigned long long>(rec.cycle),
                         static_cast<unsigned long long>(endCycle_)));
    }

    // Dense, monotone cycle numbering: a dropped or duplicated cycle
    // record would silently re-weight every later attribution.
    if (sawCycle_ && rec.cycle != lastCycle_ + 1) {
        report(strprintf("non-contiguous cycle records: cycle %llu "
                         "follows cycle %llu (dropped or duplicated "
                         "cycle)",
                         static_cast<unsigned long long>(rec.cycle),
                         static_cast<unsigned long long>(lastCycle_)));
    }

    const unsigned state = static_cast<unsigned>(rec.state);
    if (state > static_cast<unsigned>(CommitState::Flushed)) {
        report(strprintf("illegal commit state %u at cycle %llu: not "
                         "one of the four paper states",
                         state,
                         static_cast<unsigned long long>(rec.cycle)));
    }

    if (rec.numCommitted > rec.committed.size()) {
        report(strprintf("commit count %u at cycle %llu overflows the "
                         "%zu-slot commit snapshot",
                         rec.numCommitted,
                         static_cast<unsigned long long>(rec.cycle),
                         rec.committed.size()));
    }

    // State / side-band consistency (Section 2's state machine).
    const bool compute = rec.state == CommitState::Compute;
    if (compute != (rec.numCommitted > 0)) {
        report(strprintf("state %s at cycle %llu with %u committed "
                         "uops",
                         commitStateName(rec.state),
                         static_cast<unsigned long long>(rec.cycle),
                         rec.numCommitted));
    }
    if (rec.state == CommitState::Stalled && !rec.headValid) {
        report(strprintf("Stalled cycle %llu without a valid ROB head",
                         static_cast<unsigned long long>(rec.cycle)));
    }
    if (rec.state != CommitState::Stalled && rec.headValid) {
        report(strprintf("%s cycle %llu carries a ROB head snapshot "
                         "(only Stalled cycles may)",
                         commitStateName(rec.state),
                         static_cast<unsigned long long>(rec.cycle)));
    }

    // Committed uops: monotone seqs that continue the retire stream.
    const unsigned committed =
        std::min<unsigned>(rec.numCommitted,
                           static_cast<unsigned>(rec.committed.size()));
    for (unsigned i = 0; i < committed; ++i) {
        const CommittedUop &u = rec.committed[i];
        if (u.seq == invalidSeqNum || u.pc == invalidInstIndex) {
            report(strprintf("committed slot %u of cycle %llu is "
                             "uninitialized (seq %llu, pc %u)",
                             i,
                             static_cast<unsigned long long>(rec.cycle),
                             static_cast<unsigned long long>(u.seq),
                             u.pc));
            continue;
        }
        if (sawCommit_ && u.seq <= lastCommitSeq_) {
            report(strprintf("non-monotonic commit seq %llu at cycle "
                             "%llu (youngest committed was %llu)",
                             static_cast<unsigned long long>(u.seq),
                             static_cast<unsigned long long>(rec.cycle),
                             static_cast<unsigned long long>(
                                 lastCommitSeq_)));
        }
        if (sawDispatch_ && u.seq > lastDispatchSeq_) {
            report(strprintf("seq %llu commits at cycle %llu but never "
                             "dispatched (last dispatch %llu)",
                             static_cast<unsigned long long>(u.seq),
                             static_cast<unsigned long long>(rec.cycle),
                             static_cast<unsigned long long>(
                                 lastDispatchSeq_)));
        }
        checkPsv(u.psv, "committed uop", rec.cycle, u.seq);
        lastCommitSeq_ = u.seq;
        sawCommit_ = true;
    }

    // The retires delivered since the previous cycle record must be
    // exactly this cycle's commit snapshot: same uops, same PSVs, same
    // cycle. This is the cross-check that catches a replay path (codec,
    // queue, cache) delivering divergent event streams to different
    // observers.
    if (pendingRetires_.size() != committed) {
        report(strprintf("cycle %llu committed %u uops but %zu retire "
                         "events were delivered for it",
                         static_cast<unsigned long long>(rec.cycle),
                         committed, pendingRetires_.size()));
    } else {
        for (unsigned i = 0; i < committed; ++i) {
            const RetireRecord &r = pendingRetires_[i];
            const CommittedUop &u = rec.committed[i];
            if (r.seq != u.seq || r.pc != u.pc || r.psv != u.psv ||
                r.cycle != rec.cycle) {
                report(strprintf(
                    "retire/commit mismatch at cycle %llu slot %u: "
                    "retired (seq %llu, pc %u, psv 0x%x, cycle %llu) "
                    "vs committed (seq %llu, pc %u, psv 0x%x)",
                    static_cast<unsigned long long>(rec.cycle), i,
                    static_cast<unsigned long long>(r.seq), r.pc,
                    r.psv.bits(),
                    static_cast<unsigned long long>(r.cycle),
                    static_cast<unsigned long long>(u.seq), u.pc,
                    u.psv.bits()));
            }
        }
    }
    pendingRetires_.clear();

    // Last-committed side-band: valid from the first commit on, and in
    // a Compute cycle it names the youngest uop of this very cycle.
    if (sawCommit_ && !rec.lastValid) {
        report(strprintf("lastValid regressed at cycle %llu after an "
                         "earlier commit",
                         static_cast<unsigned long long>(rec.cycle)));
    }
    if (compute && committed > 0 && rec.lastValid) {
        const CommittedUop &y = rec.committed[committed - 1];
        if (rec.lastPc != y.pc || rec.lastPsv != y.psv) {
            report(strprintf("last-committed snapshot (pc %u, psv "
                             "0x%x) at cycle %llu disagrees with the "
                             "youngest committed uop (seq %llu, pc %u, "
                             "psv 0x%x)",
                             rec.lastPc, rec.lastPsv.bits(),
                             static_cast<unsigned long long>(rec.cycle),
                             static_cast<unsigned long long>(y.seq),
                             y.pc, y.psv.bits()));
        }
    }
    if (rec.lastValid)
        checkPsv(rec.lastPsv, "last-committed snapshot", rec.cycle,
                 invalidSeqNum);

    // ROB head monotonicity: the head never moves backwards and is
    // always younger than everything already committed.
    if (rec.headValid) {
        if (rec.headSeq == invalidSeqNum) {
            report(strprintf("Stalled cycle %llu with an uninitialized "
                             "ROB head seq",
                             static_cast<unsigned long long>(
                                 rec.cycle)));
        } else {
            if (sawCommit_ && rec.headSeq <= lastCommitSeq_) {
                report(strprintf(
                    "ROB head seq %llu at cycle %llu is not younger "
                    "than the youngest committed seq %llu",
                    static_cast<unsigned long long>(rec.headSeq),
                    static_cast<unsigned long long>(rec.cycle),
                    static_cast<unsigned long long>(lastCommitSeq_)));
            }
            if (sawHead_ && rec.headSeq < lastHeadSeq_) {
                report(strprintf(
                    "ROB head moved backwards at cycle %llu: seq %llu "
                    "after seq %llu",
                    static_cast<unsigned long long>(rec.cycle),
                    static_cast<unsigned long long>(rec.headSeq),
                    static_cast<unsigned long long>(lastHeadSeq_)));
            }
            lastHeadSeq_ = rec.headSeq;
            sawHead_ = true;
        }
    }

    lastCycle_ = rec.cycle;
    sawCycle_ = true;
}

void
InvariantAuditor::onDispatch(const UopRecord &rec)
{
    ++events_;
    if (sawEnd_)
        report(strprintf("dispatch of seq %llu after the end marker",
                         static_cast<unsigned long long>(rec.seq)));
    if (sawDispatch_ && rec.seq <= lastDispatchSeq_) {
        report(strprintf("non-monotonic dispatch seq %llu at cycle "
                         "%llu (previous %llu)",
                         static_cast<unsigned long long>(rec.seq),
                         static_cast<unsigned long long>(rec.cycle),
                         static_cast<unsigned long long>(
                             lastDispatchSeq_)));
    }
    if (sawFetch_ && rec.seq > lastFetchSeq_) {
        report(strprintf("seq %llu dispatches at cycle %llu before "
                         "fetching (last fetch %llu)",
                         static_cast<unsigned long long>(rec.seq),
                         static_cast<unsigned long long>(rec.cycle),
                         static_cast<unsigned long long>(lastFetchSeq_)));
    }
    lastDispatchSeq_ = rec.seq;
    sawDispatch_ = true;
}

void
InvariantAuditor::onFetch(const UopRecord &rec)
{
    ++events_;
    if (sawEnd_)
        report(strprintf("fetch of seq %llu after the end marker",
                         static_cast<unsigned long long>(rec.seq)));
    if (sawFetch_ && rec.seq <= lastFetchSeq_) {
        report(strprintf("non-monotonic fetch seq %llu at cycle %llu "
                         "(previous %llu)",
                         static_cast<unsigned long long>(rec.seq),
                         static_cast<unsigned long long>(rec.cycle),
                         static_cast<unsigned long long>(lastFetchSeq_)));
    }
    lastFetchSeq_ = rec.seq;
    sawFetch_ = true;
}

void
InvariantAuditor::onRetire(const RetireRecord &rec)
{
    ++events_;
    if (sawEnd_)
        report(strprintf("retire of seq %llu after the end marker",
                         static_cast<unsigned long long>(rec.seq)));
    if (sawRetire_ && rec.seq <= lastRetireSeq_) {
        report(strprintf("non-monotonic retire seq %llu at cycle %llu "
                         "(previous %llu)",
                         static_cast<unsigned long long>(rec.seq),
                         static_cast<unsigned long long>(rec.cycle),
                         static_cast<unsigned long long>(
                             lastRetireSeq_)));
    }
    // Retires are delivered while their commit cycle is in flight: the
    // matching cycle record (same cycle number) follows them.
    if (sawCycle_ && rec.cycle != lastCycle_ + 1) {
        report(strprintf("retire of seq %llu carries cycle %llu while "
                         "cycle %llu is in flight",
                         static_cast<unsigned long long>(rec.seq),
                         static_cast<unsigned long long>(rec.cycle),
                         static_cast<unsigned long long>(lastCycle_ +
                                                         1)));
    }
    checkPsv(rec.psv, "retired uop", rec.cycle, rec.seq);
    lastRetireSeq_ = rec.seq;
    sawRetire_ = true;
    pendingRetires_.push_back(rec);
}

void
InvariantAuditor::onEnd(Cycle final_cycle)
{
    ++events_;
    if (sawEnd_) {
        report(strprintf("duplicate end marker (cycle %llu after "
                         "cycle %llu)",
                         static_cast<unsigned long long>(final_cycle),
                         static_cast<unsigned long long>(endCycle_)));
        return;
    }
    // The end marker carries the total cycle count: one past the last
    // cycle record (records are 0-based and dense).
    if (sawCycle_ && final_cycle != lastCycle_ + 1) {
        report(strprintf("end marker cycle %llu disagrees with the "
                         "%llu cycle records delivered (last cycle "
                         "%llu)",
                         static_cast<unsigned long long>(final_cycle),
                         static_cast<unsigned long long>(cycles_),
                         static_cast<unsigned long long>(lastCycle_)));
    }
    if (!pendingRetires_.empty()) {
        report(strprintf("end marker at cycle %llu with %zu retires "
                         "not covered by a cycle record (first seq "
                         "%llu)",
                         static_cast<unsigned long long>(final_cycle),
                         pendingRetires_.size(),
                         static_cast<unsigned long long>(
                             pendingRetires_.front().seq)));
    }
    endCycle_ = final_cycle;
    sawEnd_ = true;
}

void
InvariantAuditor::finish()
{
    if (events_ > 0 && !sawCycle_) {
        report(strprintf("audited trace delivered %llu events but no "
                         "cycle record",
                         static_cast<unsigned long long>(events_)));
    }
}

std::string
auditCycleConservation(const GoldenReference &golden,
                       std::uint64_t total_cycles)
{
    const double attributed =
        golden.pics().total() + golden.droppedCycles();
    const double want = static_cast<double>(total_cycles);
    // Attribution splits each Compute cycle 1/n across n committing
    // uops, so exact conservation holds in exact arithmetic; 0.5 cycles
    // of float headroom is orders of magnitude above the accumulated
    // rounding while still catching any whole dropped/duplicated cycle.
    if (std::abs(attributed - want) <= 0.5)
        return std::string();
    return strprintf("cycle conservation violated: %.6f cycles "
                     "attributed (%.6f in the PICS + %.6f dropped "
                     "tail) vs %llu simulated",
                     attributed, golden.pics().total(),
                     golden.droppedCycles(),
                     static_cast<unsigned long long>(total_cycles));
}

std::string
auditPicsIdentical(const Pics &a, const Pics &b)
{
    if (a.size() != b.size()) {
        return strprintf("Pics differ: %zu vs %zu (unit, signature) "
                         "components",
                         a.size(), b.size());
    }
    if (a.total() != b.total()) {
        return strprintf("Pics totals differ bitwise: %.17g vs %.17g",
                         a.total(), b.total());
    }
    for (const PicsComponent &c : a.components()) {
        const double other = b.cycles(c.unit, c.signature);
        if (c.cycles != other) {
            return strprintf("Pics cell (unit %u, signature 0x%x) "
                             "differs bitwise: %.17g vs %.17g",
                             c.unit, c.signature, c.cycles, other);
        }
    }
    return std::string();
}

} // namespace tea
