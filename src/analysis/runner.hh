/**
 * @file
 * Experiment runner: simulates one workload once while the golden
 * reference and any number of sampling techniques observe the same cycle
 * trace (the paper's single-run, out-of-band evaluation methodology).
 */

#ifndef TEA_ANALYSIS_RUNNER_HH
#define TEA_ANALYSIS_RUNNER_HH

#include <memory>
#include <string>
#include <vector>

#include "core/core.hh"
#include "profilers/golden.hh"
#include "profilers/sampler.hh"
#include "workloads/workload.hh"

namespace tea {

/** Outcome of one technique in one run. */
struct TechniqueResult
{
    SamplerConfig config;
    Pics pics;
    std::uint64_t samplesTaken = 0;
    std::uint64_t samplesDropped = 0;
};

/** Outcome of simulating one workload with all observers attached. */
struct ExperimentResult
{
    std::string name;
    Program program;
    CoreStats stats;
    std::unique_ptr<GoldenReference> golden;
    std::vector<TechniqueResult> techniques;

    /** Result of the technique named @p name (fatal if absent). */
    const TechniqueResult &technique(const std::string &name) const;

    /**
     * Error of technique @p t against the golden reference projected to
     * the technique's event set, at granularity @p g (Section 4).
     */
    double errorOf(const TechniqueResult &t,
                   Granularity g = Granularity::Instruction) const;
};

/** The five techniques compared in Fig 5, in paper order. */
std::vector<SamplerConfig> standardTechniques(Cycle period = 127);

/** Simulate @p workload with @p techniques and the golden reference. */
ExperimentResult runWorkload(Workload workload,
                             std::vector<SamplerConfig> techniques,
                             const CoreConfig &cfg = CoreConfig{});

/** Convenience: construct a suite benchmark by name and run it. */
ExperimentResult runBenchmark(const std::string &name,
                              std::vector<SamplerConfig> techniques,
                              const CoreConfig &cfg = CoreConfig{});

} // namespace tea

#endif // TEA_ANALYSIS_RUNNER_HH
