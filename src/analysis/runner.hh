/**
 * @file
 * Experiment runner: simulates one workload once while the golden
 * reference and any number of sampling techniques observe the same cycle
 * trace (the paper's single-run, out-of-band evaluation methodology).
 */

#ifndef TEA_ANALYSIS_RUNNER_HH
#define TEA_ANALYSIS_RUNNER_HH

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/cache_janitor.hh"
#include "analysis/parallel_sim.hh"
#include "analysis/trace_cache.hh"
#include "common/stats.hh"
#include "core/core.hh"
#include "profilers/golden.hh"
#include "profilers/sampler.hh"
#include "workloads/workload.hh"

namespace tea {

/** Outcome of one technique in one run. */
struct TechniqueResult
{
    SamplerConfig config;
    Pics pics;
    std::uint64_t samplesTaken = 0;
    std::uint64_t samplesDropped = 0;
};

/**
 * How an experiment is executed.
 *
 * threads == 1 runs the historical serial path: every observer is
 * attached directly to the live core, which is bit-for-bit today's
 * behaviour. threads > 1 captures the trace once and fans it out to
 * worker threads, each replaying through its own observers; because
 * replay delivers the identical event sequence, results are
 * bit-identical to the serial path at any thread count (see DESIGN.md,
 * "Out-of-band replay at scale").
 */
struct RunnerOptions
{
    unsigned threads = 1;          ///< replay worker threads
    std::size_t chunkEvents = 4096; ///< trace events per chunk
    std::size_t queueChunks = 16;   ///< chunks in flight before backpressure

    /**
     * Invariant audit level (analysis/audit). 0 disables auditing; 1
     * threads an InvariantAuditor through the replay (fatal, naming
     * the offending cycle/sequence, on the first broken trace
     * invariant) and verifies golden cycle conservation; 2 additionally
     * re-runs multi-threaded experiments serially and fails unless
     * every Pics is bit-identical across the two thread counts.
     */
    unsigned audit = 0;

    /**
     * Persistent trace cache (analysis/trace_cache): when enabled, a
     * (workload, config) pair is simulated at most once; later runs
     * replay the cached on-disk trace through the observers instead of
     * re-simulating, with bit-identical results.
     */
    TraceCacheOptions cache;

    /**
     * Cache-lifecycle budgets (analysis/cache_janitor): recovery GC on
     * first cache access, and — when janitor.maxBytes is set — entry
     * admission control plus a budget-enforcing janitor pass after
     * every store.
     */
    JanitorConfig janitor;

    /**
     * How long a cache miss waits for the per-entry advisory write lock
     * (common/file_lock) before degrading to simulate-without-storing.
     * The lock serializes concurrent processes rewriting the same
     * entry; flock semantics make a crashed holder's lock evaporate, so
     * a timeout here means live contention, not a stale lock.
     */
    unsigned cacheLockTimeoutMs = 5000;

    /**
     * Warm-hit frame-decode parallelism: threads decoding chunk frames
     * out of a mapped trace-cache entry concurrently. Frames are
     * self-contained (MappedTraceFile::decodeFrame), and the pump
     * hands chunks to the observers in file order regardless of which
     * thread decoded them, so results are bit-identical at any
     * setting. 1 decodes inline in the producer (the default and the
     * historical behaviour).
     */
    unsigned decodeThreads = 1;

    /**
     * Decode-ahead bound, in frames per decode thread: how far
     * out-of-order frame decodes may run ahead of the in-order handoff
     * before backpressure pauses them. Larger windows ride out uneven
     * frame decode times at the cost of more chunks held in memory.
     */
    std::size_t batchFrames = 4;

    /**
     * Time-parallel simulation of cache misses (analysis/parallel_sim):
     * when sim.threads > 1, a cold simulate splits the run into
     * checkpointed intervals simulated concurrently and stitched back
     * bit-identically (serial fallback on any convergence failure).
     * Orthogonal to `threads`, which parallelizes the *observers*.
     */
    TimeParallelOptions sim;

    /**
     * Options from the environment: TEA_THREADS (default 1),
     * TEA_CHUNK_EVENTS, TEA_QUEUE_CHUNKS, TEA_AUDIT (default 0, see
     * audit above), TEA_CACHE_LOCK_TIMEOUT_MS, TEA_DECODE_THREADS and
     * TEA_BATCH_FRAMES (see decodeThreads/batchFrames above), the
     * trace-cache controls TEA_TRACE_CACHE / TEA_TRACE_CACHE_DIR (see
     * TraceCacheOptions), and the janitor budgets
     * TEA_TRACE_CACHE_MAX_BYTES etc. (see JanitorConfig::fromEnv).
     * TEA_THREADS=0 and TEA_DECODE_THREADS=0 mean "one worker per
     * hardware thread". The time-parallel simulation knobs
     * TEA_SIM_THREADS / TEA_SIM_INTERVAL / TEA_SIM_WARMUP /
     * TEA_SIM_PARALLEL load via TimeParallelOptions::fromEnv.
     */
    static RunnerOptions fromEnv();
};

/**
 * Thrown when an experiment fails in a *contained* way — a replay
 * worker's observers died (ReplayWorkerStats::error) or an injected
 * fault fired — as opposed to a programming error (tea_panic) or an
 * unusable environment (tea_fatal). runBenchmarkSuite catches it per
 * experiment and records it in ExperimentResult::error so one bad
 * experiment cannot take the suite down.
 */
struct ExperimentFailure : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** Outcome of simulating one workload with all observers attached. */
struct ExperimentResult
{
    std::string name;
    Program program;
    CoreStats stats;
    ReplayStats replay;
    std::unique_ptr<GoldenReference> golden;
    std::vector<TechniqueResult> techniques;

    /**
     * Non-empty when this experiment failed and the failure was
     * contained to it (suite runs only; see ExperimentFailure). A
     * failed result carries no usable Pics.
     */
    std::string error;

    /** True when the experiment failed (see error). */
    bool failed() const { return !error.empty(); }

    /** Result of the technique named @p name (fatal if absent). */
    const TechniqueResult &technique(const std::string &name) const;

    /**
     * Error of technique @p t against the golden reference projected to
     * the technique's event set, at granularity @p g (Section 4).
     */
    double errorOf(const TechniqueResult &t,
                   Granularity g = Granularity::Instruction) const;
};

/** The five techniques compared in Fig 5, in paper order. */
std::vector<SamplerConfig> standardTechniques(Cycle period = 127);

/**
 * Simulate @p workload with @p techniques and the golden reference.
 * Dispatches on opts.threads: 1 = serial in-process observers, > 1 =
 * parallel out-of-band replay (identical results either way).
 */
ExperimentResult runWorkload(Workload workload,
                             std::vector<SamplerConfig> techniques,
                             const RunnerOptions &opts = RunnerOptions{},
                             const CoreConfig &cfg = CoreConfig{});

/** Convenience: construct a suite benchmark by name and run it. */
ExperimentResult runBenchmark(const std::string &name,
                              std::vector<SamplerConfig> techniques,
                              const RunnerOptions &opts = RunnerOptions{},
                              const CoreConfig &cfg = CoreConfig{});

/** Compatibility overloads: custom core config, default run options. */
ExperimentResult runWorkload(Workload workload,
                             std::vector<SamplerConfig> techniques,
                             const CoreConfig &cfg);
ExperimentResult runBenchmark(const std::string &name,
                              std::vector<SamplerConfig> techniques,
                              const CoreConfig &cfg);

} // namespace tea

#endif // TEA_ANALYSIS_RUNNER_HH
