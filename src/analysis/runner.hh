/**
 * @file
 * Experiment runner: simulates one workload once while the golden
 * reference and any number of sampling techniques observe the same cycle
 * trace (the paper's single-run, out-of-band evaluation methodology).
 */

#ifndef TEA_ANALYSIS_RUNNER_HH
#define TEA_ANALYSIS_RUNNER_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "analysis/trace_cache.hh"
#include "common/stats.hh"
#include "core/core.hh"
#include "profilers/golden.hh"
#include "profilers/sampler.hh"
#include "workloads/workload.hh"

namespace tea {

/** Outcome of one technique in one run. */
struct TechniqueResult
{
    SamplerConfig config;
    Pics pics;
    std::uint64_t samplesTaken = 0;
    std::uint64_t samplesDropped = 0;
};

/**
 * How an experiment is executed.
 *
 * threads == 1 runs the historical serial path: every observer is
 * attached directly to the live core, which is bit-for-bit today's
 * behaviour. threads > 1 captures the trace once and fans it out to
 * worker threads, each replaying through its own observers; because
 * replay delivers the identical event sequence, results are
 * bit-identical to the serial path at any thread count (see DESIGN.md,
 * "Out-of-band replay at scale").
 */
struct RunnerOptions
{
    unsigned threads = 1;          ///< replay worker threads
    std::size_t chunkEvents = 4096; ///< trace events per chunk
    std::size_t queueChunks = 16;   ///< chunks in flight before backpressure

    /**
     * Invariant audit level (analysis/audit). 0 disables auditing; 1
     * threads an InvariantAuditor through the replay (fatal, naming
     * the offending cycle/sequence, on the first broken trace
     * invariant) and verifies golden cycle conservation; 2 additionally
     * re-runs multi-threaded experiments serially and fails unless
     * every Pics is bit-identical across the two thread counts.
     */
    unsigned audit = 0;

    /**
     * Persistent trace cache (analysis/trace_cache): when enabled, a
     * (workload, config) pair is simulated at most once; later runs
     * replay the cached on-disk trace through the observers instead of
     * re-simulating, with bit-identical results.
     */
    TraceCacheOptions cache;

    /**
     * Options from the environment: TEA_THREADS (default 1),
     * TEA_CHUNK_EVENTS, TEA_QUEUE_CHUNKS, TEA_AUDIT (default 0, see
     * audit above), and the trace-cache controls TEA_TRACE_CACHE /
     * TEA_TRACE_CACHE_DIR (see TraceCacheOptions). TEA_THREADS=0 means
     * "one worker per hardware thread".
     */
    static RunnerOptions fromEnv();
};

/** Outcome of simulating one workload with all observers attached. */
struct ExperimentResult
{
    std::string name;
    Program program;
    CoreStats stats;
    ReplayStats replay;
    std::unique_ptr<GoldenReference> golden;
    std::vector<TechniqueResult> techniques;

    /** Result of the technique named @p name (fatal if absent). */
    const TechniqueResult &technique(const std::string &name) const;

    /**
     * Error of technique @p t against the golden reference projected to
     * the technique's event set, at granularity @p g (Section 4).
     */
    double errorOf(const TechniqueResult &t,
                   Granularity g = Granularity::Instruction) const;
};

/** The five techniques compared in Fig 5, in paper order. */
std::vector<SamplerConfig> standardTechniques(Cycle period = 127);

/**
 * Simulate @p workload with @p techniques and the golden reference.
 * Dispatches on opts.threads: 1 = serial in-process observers, > 1 =
 * parallel out-of-band replay (identical results either way).
 */
ExperimentResult runWorkload(Workload workload,
                             std::vector<SamplerConfig> techniques,
                             const RunnerOptions &opts = RunnerOptions{},
                             const CoreConfig &cfg = CoreConfig{});

/** Convenience: construct a suite benchmark by name and run it. */
ExperimentResult runBenchmark(const std::string &name,
                              std::vector<SamplerConfig> techniques,
                              const RunnerOptions &opts = RunnerOptions{},
                              const CoreConfig &cfg = CoreConfig{});

/** Compatibility overloads: custom core config, default run options. */
ExperimentResult runWorkload(Workload workload,
                             std::vector<SamplerConfig> techniques,
                             const CoreConfig &cfg);
ExperimentResult runBenchmark(const std::string &name,
                              std::vector<SamplerConfig> techniques,
                              const CoreConfig &cfg);

} // namespace tea

#endif // TEA_ANALYSIS_RUNNER_HH
