#include "profilers/overhead.hh"

namespace tea {

StorageBreakdown
teaStorage(const CoreConfig &cfg)
{
    StorageBreakdown b;
    auto add = [&](std::string name, std::uint64_t bits) {
        b.items.push_back(StorageItem{std::move(name), bits});
        b.totalBits += bits;
    };

    // Front-end DR-L1/DR-TLB tracking: 2 bits per fetch-buffer entry,
    // three 2-bit fetch-packet registers, and 2 bits per decode and
    // dispatch slot to carry the bits through the front end.
    add("fetch buffer PSV bits (2b x entries)",
        2ULL * cfg.fetchBufferEntries);
    add("fetch packet registers (3 x 2b)", 6);
    add("decode stage carry (2b x width)", 2ULL * cfg.decodeWidth);
    add("dispatch stage carry (2b x width)", 2ULL * cfg.dispatchWidth);
    // DR-SQ detection at dispatch.
    add("dispatch DR-SQ register", 1);
    // 9-bit PSV per ROB entry.
    add("ROB PSV field (9b x entries)", 9ULL * cfg.robEntries);
    // ST-TLB bit per LSU entry (detected before the cache responds).
    add("LSU ST-TLB bits (1b x LSQ entries)",
        1ULL * (cfg.lqEntries + cfg.sqEntries));
    // Last-committed PSV register (Flushed-state attribution).
    add("last-committed PSV register", 16);
    // Sample staging: PSVs packed into the 64-bit sample CSR.
    add("sample staging CSR", 64);
    return b;
}

double
tipStorageBytes()
{
    return 57.0;
}

unsigned
sampleBytes()
{
    return 88;
}

double
samplingPerfOverhead(Cycle period, double handler_cycles)
{
    return handler_cycles / static_cast<double>(period);
}

double
robFetchBufferStorageFraction(const CoreConfig &cfg)
{
    StorageBreakdown b = teaStorage(cfg);
    double rob_fb = 0.0;
    for (const StorageItem &i : b.items) {
        if (i.name.find("ROB") != std::string::npos ||
            i.name.find("fetch buffer") != std::string::npos) {
            rob_fb += static_cast<double>(i.bits);
        }
    }
    return rob_fb / static_cast<double>(b.totalBits);
}

} // namespace tea
