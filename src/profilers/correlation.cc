#include "profilers/correlation.hh"

#include <vector>

#include "common/stats.hh"

namespace tea {

std::array<EventCorrelation, numEvents>
eventImpactCorrelation(const GoldenReference &golden)
{
    // Pre-aggregate golden cycles per (pc, event-in-signature).
    std::unordered_map<InstIndex, std::array<double, numEvents>> impact;
    for (const PicsComponent &c : golden.pics().components()) {
        Psv sig(c.signature);
        if (sig.empty())
            continue;
        auto &arr = impact[static_cast<InstIndex>(c.unit)];
        for (unsigned e = 0; e < numEvents; ++e) {
            if (sig.test(static_cast<Event>(e)))
                arr[e] += c.cycles;
        }
    }

    std::array<EventCorrelation, numEvents> out{};
    for (unsigned e = 0; e < numEvents; ++e) {
        std::vector<double> xs;
        std::vector<double> ys;
        for (const auto &[pc, counts] : golden.eventCounts()) {
            if (counts[e] == 0)
                continue;
            xs.push_back(static_cast<double>(counts[e]));
            auto it = impact.find(pc);
            ys.push_back(it == impact.end() ? 0.0 : it->second[e]);
        }
        out[e].n = xs.size();
        if (xs.size() < 3)
            continue;
        // A benchmark where every site incurs the event equally often
        // carries no count signal; exclude it rather than reporting a
        // spurious zero.
        double mx = mean(xs);
        double sxx = 0.0;
        for (double x : xs)
            sxx += (x - mx) * (x - mx);
        if (sxx <= 0.0)
            continue;
        out[e].r = pearson(xs, ys);
        out[e].valid = true;
    }
    return out;
}

} // namespace tea
