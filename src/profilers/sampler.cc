#include "profilers/sampler.hh"

#include "common/logging.hh"
#include "core/trace_buffer.hh"

namespace tea {

const char *
samplePolicyName(SamplePolicy p)
{
    switch (p) {
      case SamplePolicy::TimeProportional: return "time-proportional";
      case SamplePolicy::NextCommitting: return "next-committing";
      case SamplePolicy::DispatchTag: return "dispatch-tag";
      case SamplePolicy::FetchTag: return "fetch-tag";
    }
    tea_panic("unknown sample policy");
}

SamplerConfig
teaConfig(Cycle period)
{
    return SamplerConfig{"TEA", SamplePolicy::TimeProportional,
                         teaEventSet().mask, period, 0};
}

SamplerConfig
nciTeaConfig(Cycle period)
{
    return SamplerConfig{"NCI-TEA", SamplePolicy::NextCommitting,
                         teaEventSet().mask, period, 0};
}

SamplerConfig
ibsConfig(Cycle period)
{
    return SamplerConfig{"IBS", SamplePolicy::DispatchTag,
                         ibsEventSet().mask, period, 0};
}

SamplerConfig
speConfig(Cycle period)
{
    return SamplerConfig{"SPE", SamplePolicy::DispatchTag,
                         speEventSet().mask, period, 0};
}

SamplerConfig
risConfig(Cycle period)
{
    return SamplerConfig{"RIS", SamplePolicy::FetchTag,
                         risEventSet().mask, period, 0};
}

SamplerConfig
tipConfig(Cycle period)
{
    // TIP is the time-proportional profiler without PSVs: every sample
    // lands in the Base component of its instruction.
    return SamplerConfig{"TIP", SamplePolicy::TimeProportional, 0,
                         period, 0};
}

SamplerConfig
dtagTeaConfig(Cycle period)
{
    return SamplerConfig{"DTAG-TEA", SamplePolicy::DispatchTag,
                         teaEventSet().mask, period, 0};
}

TechniqueSampler::TechniqueSampler(SamplerConfig cfg) : cfg_(std::move(cfg))
{
    tea_assert(cfg_.period > 0, "sampling period must be positive");
}

void
TechniqueSampler::setRecorder(SampleWriter *writer, std::uint16_t core_id,
                              std::uint32_t pid, std::uint32_t tid)
{
    recorder_ = writer;
    coreId_ = core_id;
    pid_ = pid;
    tid_ = tid;
}

void
TechniqueSampler::emitRecord(Cycle timestamp, CommitState state,
                             unsigned count, const std::uint64_t *addrs,
                             const std::uint16_t *psvs)
{
    if (!recorder_)
        return;
    SampleRecord rec;
    rec.timestamp = timestamp;
    rec.coreId = coreId_;
    rec.pid = pid_;
    rec.tid = tid_;
    rec.flags = SampleRecord::makeFlags(state, count);
    for (unsigned i = 0; i < count && i < rec.addrs.size(); ++i) {
        rec.addrs[i] = addrs[i];
        rec.psvs[i] = psvs[i];
    }
    recorder_->onSample(rec);
}

void
TechniqueSampler::onCycle(const CycleRecord &rec)
{
    if (rec.cycle < cfg_.phase)
        return;
    if ((rec.cycle - cfg_.phase) % cfg_.period != 0)
        return;
    takeSample(rec);
}

void
TechniqueSampler::takeSample(const CycleRecord &rec)
{
    double weight = static_cast<double>(cfg_.period);

    switch (cfg_.policy) {
      case SamplePolicy::TimeProportional:
      case SamplePolicy::NextCommitting:
        switch (rec.state) {
          case CommitState::Compute: {
            double share = weight / rec.numCommitted;
            std::uint64_t addrs[4] = {};
            std::uint16_t psvs[4] = {};
            unsigned count = 0;
            for (unsigned i = 0; i < rec.numCommitted; ++i) {
                const CommittedUop &u = rec.committed[i];
                pics_.add(u.pc, u.psv.masked(cfg_.eventMask), share);
                if (count < 4) {
                    addrs[count] = u.pc;
                    psvs[count] = u.psv.masked(cfg_.eventMask).bits();
                    ++count;
                }
            }
            emitRecord(rec.cycle, CommitState::Compute, count, addrs,
                       psvs);
            ++samplesTaken_;
            break;
          }
          case CommitState::Stalled:
          case CommitState::Drained:
            pendingWeight_ += weight;
            ++pendingCount_;
            break;
          case CommitState::Flushed:
            if (cfg_.policy == SamplePolicy::TimeProportional &&
                rec.lastValid) {
                pics_.add(rec.lastPc, rec.lastPsv.masked(cfg_.eventMask),
                          weight);
                std::uint64_t addr = rec.lastPc;
                std::uint16_t psv =
                    rec.lastPsv.masked(cfg_.eventMask).bits();
                emitRecord(rec.cycle, CommitState::Flushed, 1, &addr,
                           &psv);
                ++samplesTaken_;
            } else {
                // NCI misattributes flush cycles to the instruction that
                // commits next (also the start-up corner for TEA).
                pendingWeight_ += weight;
                ++pendingCount_;
            }
            break;
        }
        break;

      case SamplePolicy::DispatchTag:
      case SamplePolicy::FetchTag:
        if (armed_ || taggedSeq_ != invalidSeqNum) {
            // The previous tagged micro-op is still in flight; hardware
            // drops the new sample.
            ++samplesDropped_;
        } else {
            armed_ = true;
        }
        break;
    }
}

void
TechniqueSampler::tag(const UopRecord &rec, SamplePolicy stage)
{
    if (cfg_.policy != stage || !armed_)
        return;
    armed_ = false;
    taggedSeq_ = rec.seq;
}

void
TechniqueSampler::onDispatch(const UopRecord &rec)
{
    tag(rec, SamplePolicy::DispatchTag);
}

void
TechniqueSampler::onFetch(const UopRecord &rec)
{
    tag(rec, SamplePolicy::FetchTag);
}

void
TechniqueSampler::onRetire(const RetireRecord &rec)
{
    if (pendingWeight_ > 0.0) {
        pics_.add(rec.pc, rec.psv.masked(cfg_.eventMask), pendingWeight_);
        pendingWeight_ = 0.0;
        std::uint64_t addr = rec.pc;
        std::uint16_t psv = rec.psv.masked(cfg_.eventMask).bits();
        // One interrupt fired per folded sample; emit one record each.
        for (std::uint64_t i = 0; i < pendingCount_; ++i)
            emitRecord(rec.cycle, CommitState::Stalled, 1, &addr, &psv);
        samplesTaken_ += pendingCount_;
        pendingCount_ = 0;
    }
    if (taggedSeq_ == rec.seq) {
        pics_.add(rec.pc, rec.psv.masked(cfg_.eventMask),
                  static_cast<double>(cfg_.period));
        std::uint64_t addr = rec.pc;
        std::uint16_t psv = rec.psv.masked(cfg_.eventMask).bits();
        emitRecord(rec.cycle, CommitState::Compute, 1, &addr, &psv);
        taggedSeq_ = invalidSeqNum;
        ++samplesTaken_;
    }
}

// tea_lint: hot
void
TechniqueSampler::onBatch(const TraceEvent *events, std::size_t n)
{
    // Batched replay inner loop (the class is final, so the calls
    // below resolve statically). A sampler touches one cycle in
    // cfg_.period, so what matters here is making the skip cheap: one
    // switch and one comparison per event, with the tag stages behind
    // a hoisted policy test instead of a virtual call each.
    const Cycle period = cfg_.period;
    const Cycle phase = cfg_.phase;
    const bool tags = cfg_.policy == SamplePolicy::DispatchTag ||
                      cfg_.policy == SamplePolicy::FetchTag;
    for (std::size_t i = 0; i < n; ++i) {
        const TraceEvent &ev = events[i];
        switch (ev.kind) {
          case TraceEventKind::Cycle: {
            const CycleRecord &rec = ev.p.cycle;
            if (rec.cycle >= phase &&
                (rec.cycle - phase) % period == 0)
                takeSample(rec);
            break;
          }
          case TraceEventKind::Dispatch:
            if (tags)
                tag(ev.p.uop, SamplePolicy::DispatchTag);
            break;
          case TraceEventKind::Fetch:
            if (tags)
                tag(ev.p.uop, SamplePolicy::FetchTag);
            break;
          case TraceEventKind::Retire:
            onRetire(ev.p.retire);
            break;
          case TraceEventKind::End:
            // Producers keep End out of batches (core/trace.hh), but
            // honor one in a hand-built chunk anyway.
            onEnd(ev.p.end);
            break;
        }
    }
}

void
TechniqueSampler::onEnd(Cycle final_cycle)
{
    (void)final_cycle;
    if (armed_ || taggedSeq_ != invalidSeqNum)
        ++samplesDropped_;
    samplesDropped_ += pendingCount_;
    pendingWeight_ = 0.0;
    pendingCount_ = 0;
    armed_ = false;
    taggedSeq_ = invalidSeqNum;
}

} // namespace tea
