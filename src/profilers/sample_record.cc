#include "profilers/sample_record.hh"

#include <cstdio>

#include "common/logging.hh"

namespace tea {

void
SampleBuffer::onSample(const SampleRecord &rec)
{
    records_.push_back(rec);
}

void
SampleBuffer::writeFile(const std::string &path) const
{
    // Explicit user-requested dump, fatal on any failure: there is no
    // retry/degrade policy for the raw-io seams to implement here.
    // tea_check: allow(raw-io)
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        tea_fatal("cannot open sample file '%s' for writing",
                  path.c_str());
    std::uint64_t n = records_.size();
    if (std::fwrite(&n, sizeof(n), 1, f) != 1) // tea_check: allow(raw-io)
        tea_fatal("short write to '%s'", path.c_str());
    // tea_check: allow(raw-io)
    if (n && std::fwrite(records_.data(), sizeof(SampleRecord),
                         records_.size(), f) != records_.size()) {
        tea_fatal("short write to '%s'", path.c_str());
    }
    std::fclose(f); // tea_check: allow(raw-io)
}

std::vector<SampleRecord>
SampleBuffer::readFile(const std::string &path)
{
    // Same contract as writeFile: explicit load, fatal on failure.
    // tea_check: allow(raw-io)
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        tea_fatal("cannot open sample file '%s'", path.c_str());
    std::uint64_t n = 0;
    if (std::fread(&n, sizeof(n), 1, f) != 1) // tea_check: allow(raw-io)
        tea_fatal("truncated sample file '%s'", path.c_str());
    std::vector<SampleRecord> records(n);
    // tea_check: allow(raw-io)
    if (n && std::fread(records.data(), sizeof(SampleRecord), n, f) != n)
        tea_fatal("truncated sample file '%s'", path.c_str());
    std::fclose(f); // tea_check: allow(raw-io)
    return records;
}

Pics
picsFromRecords(const std::vector<SampleRecord> &records, Cycle period,
                std::uint16_t event_mask, int core_filter)
{
    Pics pics;
    for (const SampleRecord &rec : records) {
        if (core_filter >= 0 &&
            rec.coreId != static_cast<std::uint16_t>(core_filter)) {
            continue;
        }
        unsigned n = rec.count();
        if (n == 0)
            continue;
        double share = static_cast<double>(period) / n;
        for (unsigned i = 0; i < n && i < rec.addrs.size(); ++i) {
            pics.add(static_cast<InstIndex>(rec.addrs[i]),
                     Psv(rec.psvs[i]).masked(event_mask), share);
        }
    }
    return pics;
}

} // namespace tea
