#include "profilers/golden.hh"

#include "common/logging.hh"

namespace tea {

namespace {
/** Upper bin of the per-instance stall histograms (cycles). */
constexpr std::uint64_t stallHistMax = 512;
} // namespace

void
GoldenReference::onCycle(const CycleRecord &rec)
{
    switch (rec.state) {
      case CommitState::Compute: {
        double share = 1.0 / rec.numCommitted;
        for (unsigned i = 0; i < rec.numCommitted; ++i) {
            const CommittedUop &u = rec.committed[i];
            pics_.add(u.pc, u.psv, share);
        }
        break;
      }
      case CommitState::Stalled:
      case CommitState::Drained:
        // Attributed to the next-committing instruction; its PSV is only
        // final at retire, so accumulate until the next onRetire.
        pendingCycles_ += 1.0;
        break;
      case CommitState::Flushed:
        if (rec.lastValid) {
            pics_.add(rec.lastPc, rec.lastPsv, 1.0);
        } else {
            pendingCycles_ += 1.0; // start-up before any commit
        }
        break;
    }
}

void
GoldenReference::onRetire(const RetireRecord &rec)
{
    if (pendingCycles_ > 0.0) {
        pics_.add(rec.pc, rec.psv, pendingCycles_);
        auto [it, inserted] = stallHist_.try_emplace(rec.psv.bits(),
                                                     stallHistMax);
        it->second.add(static_cast<std::uint64_t>(pendingCycles_));
        pendingCycles_ = 0.0;
    } else {
        auto [it, inserted] = stallHist_.try_emplace(rec.psv.bits(),
                                                     stallHistMax);
        it->second.add(0);
    }

    auto &counts = eventCounts_[rec.pc];
    for (unsigned i = 0; i < numEvents; ++i) {
        if (rec.psv.test(static_cast<Event>(i)))
            ++counts[i];
    }
}

void
GoldenReference::onEnd(Cycle final_cycle)
{
    (void)final_cycle;
    dropped_ = pendingCycles_;
    pendingCycles_ = 0.0;
}

} // namespace tea
