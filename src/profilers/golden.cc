#include "profilers/golden.hh"

#include "common/logging.hh"
#include "core/trace_buffer.hh"

namespace tea {

namespace {
/** Upper bin of the per-instance stall histograms (cycles). */
constexpr std::uint64_t stallHistMax = 512;
} // namespace

void
GoldenReference::onCycle(const CycleRecord &rec)
{
    switch (rec.state) {
      case CommitState::Compute: {
        double share = 1.0 / rec.numCommitted;
        for (unsigned i = 0; i < rec.numCommitted; ++i) {
            const CommittedUop &u = rec.committed[i];
            pics_.add(u.pc, u.psv, share);
        }
        break;
      }
      case CommitState::Stalled:
      case CommitState::Drained:
        // Attributed to the next-committing instruction; its PSV is only
        // final at retire, so accumulate until the next onRetire.
        pendingCycles_ += 1.0;
        break;
      case CommitState::Flushed:
        if (rec.lastValid) {
            pics_.add(rec.lastPc, rec.lastPsv, 1.0);
        } else {
            pendingCycles_ += 1.0; // start-up before any commit
        }
        break;
    }
}

void
GoldenReference::onRetire(const RetireRecord &rec)
{
    if (pendingCycles_ > 0.0) {
        pics_.add(rec.pc, rec.psv, pendingCycles_);
        auto [it, inserted] = stallHist_.try_emplace(rec.psv.bits(),
                                                     stallHistMax);
        it->second.add(static_cast<std::uint64_t>(pendingCycles_));
        pendingCycles_ = 0.0;
    } else {
        auto [it, inserted] = stallHist_.try_emplace(rec.psv.bits(),
                                                     stallHistMax);
        it->second.add(0);
    }

    auto &counts = eventCounts_[rec.pc];
    for (unsigned i = 0; i < numEvents; ++i) {
        if (rec.psv.test(static_cast<Event>(i)))
            ++counts[i];
    }
}

// tea_lint: hot
void
GoldenReference::onBatch(const TraceEvent *events, std::size_t n)
{
    // Batched replay inner loop: the same per-kind logic as the
    // virtual callbacks (the class is final, so these calls resolve
    // statically), minus the per-event virtual hop the default
    // TraceSink::onBatch fan-out pays. Dispatch and fetch events are
    // skipped outright — the golden reference only consumes commit
    // state and retires.
    for (std::size_t i = 0; i < n; ++i) {
        const TraceEvent &ev = events[i];
        switch (ev.kind) {
          case TraceEventKind::Cycle:
            onCycle(ev.p.cycle);
            break;
          case TraceEventKind::Retire:
            onRetire(ev.p.retire);
            break;
          case TraceEventKind::Dispatch:
          case TraceEventKind::Fetch:
            break;
          case TraceEventKind::End:
            // Producers keep End out of batches (core/trace.hh), but a
            // hand-built chunk may still carry one; honor it.
            onEnd(ev.p.end);
            break;
        }
    }
}

void
GoldenReference::onEnd(Cycle final_cycle)
{
    (void)final_cycle;
    dropped_ = pendingCycles_;
    pendingCycles_ = 0.0;
}

} // namespace tea
