/**
 * @file
 * Event-count versus performance-impact correlation (Fig 7): quantifies
 * how well counting an event predicts the event's contribution to the
 * golden cycle stacks, per event, across the static instructions of one
 * benchmark.
 */

#ifndef TEA_PROFILERS_CORRELATION_HH
#define TEA_PROFILERS_CORRELATION_HH

#include <array>

#include "events/event.hh"
#include "profilers/golden.hh"

namespace tea {

/** Correlation result for one event in one benchmark. */
struct EventCorrelation
{
    double r = 0.0;      ///< Pearson correlation coefficient
    std::size_t n = 0;   ///< static instructions with the event
    bool valid = false;  ///< n >= 3 and non-degenerate
};

/**
 * For each event: the Pearson correlation, across static instructions
 * that incurred the event at least once, between the instruction's
 * dynamic event count and the golden-stack cycles attributed to the
 * instruction under signatures containing the event.
 */
std::array<EventCorrelation, numEvents>
eventImpactCorrelation(const GoldenReference &golden);

} // namespace tea

#endif // TEA_PROFILERS_CORRELATION_HH
