/**
 * @file
 * TEA overhead model (Section 3, "Overheads"): storage-bit accounting
 * derived from the core configuration, the sampling performance-overhead
 * model, and the published power figures (power cannot be re-synthesized
 * offline; see DESIGN.md).
 */

#ifndef TEA_PROFILERS_OVERHEAD_HH
#define TEA_PROFILERS_OVERHEAD_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "core/config.hh"

namespace tea {

/** One storage component of the TEA implementation. */
struct StorageItem
{
    std::string name;
    std::uint64_t bits;
};

/** Complete storage accounting. */
struct StorageBreakdown
{
    std::vector<StorageItem> items;
    std::uint64_t totalBits = 0;

    double totalBytes() const { return totalBits / 8.0; }
};

/** TEA's storage overhead for @p cfg (paper: 249 B for Table 2). */
StorageBreakdown teaStorage(const CoreConfig &cfg);

/** TIP's baseline storage overhead in bytes (paper: 57 B). */
double tipStorageBytes();

/** Sample record size in bytes as communicated to software (paper: 88 B). */
unsigned sampleBytes();

/**
 * Performance overhead of sampling at @p period cycles/sample: the
 * interrupt handler plus buffer write costs @p handler_cycles per
 * sample (calibrated so the paper's 4 kHz on 3.2 GHz -> 1.1%).
 */
double samplingPerfOverhead(Cycle period, double handler_cycles = 8800.0);

/** Published power figures, reproduced analytically. */
struct PowerModel
{
    double robFetchBufferIncrease = 0.046; ///< +4.6% on ROB+fetch buffer
    double absoluteMilliwatts = 3.2;       ///< ~3.2 mW per core
    double corePowerWatts = 4.7;           ///< i7-1260P per-core (RAPL)

    /** Fraction of per-core power (paper: ~0.1%). */
    double coreFraction() const
    {
        return absoluteMilliwatts / 1000.0 / corePowerWatts;
    }
};

/**
 * Fraction of TEA's storage held in the ROB and fetch buffer (the paper
 * synthesizes only these units because they hold 91.7% of the storage).
 */
double robFetchBufferStorageFraction(const CoreConfig &cfg);

} // namespace tea

#endif // TEA_PROFILERS_OVERHEAD_HH
