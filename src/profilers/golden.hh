/**
 * @file
 * The golden reference (Section 4): time-proportional PICS computed from
 * every cycle of the trace. Unimplementable in real hardware (it would
 * require streaming PSVs for every dynamic instruction) but exact, and
 * therefore the baseline every sampling technique is scored against.
 *
 * It additionally records per-static-instruction event counts (for the
 * Fig 7 event-count-vs-impact correlation) and the distribution of
 * per-dynamic-instruction stall/drain attributions keyed by signature
 * (for the event-coverage claim: 99% of stalls of event-free
 * instructions are short).
 */

#ifndef TEA_PROFILERS_GOLDEN_HH
#define TEA_PROFILERS_GOLDEN_HH

#include <array>
#include <map>
#include <unordered_map>

#include "common/stats.hh"
#include "core/trace.hh"
#include "profilers/pics.hh"

namespace tea {

/**
 * Exact, non-sampling time-proportional PICS collector.
 *
 * `final` matters for speed, not just hygiene: the batched replay path
 * (replayChunk, core/trace_buffer) delivers whole chunks through
 * onBatch, whose per-kind dispatch below devirtualizes into direct
 * calls only when the compiler can prove no subclass overrides them.
 */
class GoldenReference final : public TraceSink
{
  public:
    GoldenReference() = default;

    void onCycle(const CycleRecord &rec) override;
    void onRetire(const RetireRecord &rec) override;
    void onEnd(Cycle final_cycle) override;
    void onBatch(const TraceEvent *events, std::size_t n) override;

    /** The exact instruction-granularity PICS. */
    const Pics &pics() const { return pics_; }

    /**
     * Pre-size the PICS and event-count tables for a program with
     * @p static_insts static instructions (the golden reference touches
     * nearly every one, several signatures each).
     */
    void reserveCells(std::size_t static_insts)
    {
        pics_.reserve(4 * static_insts);
        eventCounts_.reserve(static_insts);
    }

    /** Dynamic occurrence count of each event per static instruction. */
    const std::unordered_map<InstIndex, std::array<std::uint64_t,
                                                   numEvents>> &
    eventCounts() const
    {
        return eventCounts_;
    }

    /**
     * Distribution of stall/drain cycles attributed to single dynamic
     * instruction executions, keyed by the instruction's signature bits.
     */
    const std::map<std::uint16_t, Histogram> &stallHistograms() const
    {
        return stallHist_;
    }

    /** Cycles that were pending at program end (unattributable tail). */
    double droppedCycles() const { return dropped_; }

  private:
    Pics pics_;
    double pendingCycles_ = 0.0; ///< stalled/drained cycles to attribute
    double dropped_ = 0.0;
    std::unordered_map<InstIndex, std::array<std::uint64_t, numEvents>>
        eventCounts_;
    std::map<std::uint16_t, Histogram> stallHist_;
};

} // namespace tea

#endif // TEA_PROFILERS_GOLDEN_HH
