/**
 * @file
 * Per-Instruction Cycle Stacks (PICS).
 *
 * A Pics maps (static instruction, performance-event signature) to the
 * number of cycles the architecture spent exposing that instruction's
 * latency while it carried that signature. Aggregation to basic-block,
 * function and application granularity, masking to a technique's event
 * set, and the paper's error metric (Section 4) are provided here.
 */

#ifndef TEA_PROFILERS_PICS_HH
#define TEA_PROFILERS_PICS_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/fingerprint.hh"
#include "common/types.hh"
#include "events/event.hh"
#include "isa/program.hh"

namespace tea {

/** Analysis granularity (Fig 9). */
enum class Granularity
{
    Instruction,
    BasicBlock,
    Function,
    Application,
};

/** Name of a granularity level. */
const char *granularityName(Granularity g);

/** One component of a cycle stack. */
struct PicsComponent
{
    std::uint32_t unit = 0;   ///< unit id at the chosen granularity
    std::uint16_t signature = 0; ///< PSV bits of the component
    double cycles = 0.0;
};

/** Cycle stacks over units of one granularity. */
class Pics
{
  public:
    Pics() = default;

    // The last-cell memo below points into cells_; after a copy or a
    // move it would alias the *source's* table, so every transfer
    // resets it (cheap — the next add() re-primes it).
    Pics(const Pics &other) : cells_(other.cells_), total_(other.total_)
    {
    }
    Pics(Pics &&other) noexcept
        : cells_(std::move(other.cells_)), total_(other.total_)
    {
        other.resetMemo();
    }
    Pics &operator=(const Pics &other)
    {
        cells_ = other.cells_;
        total_ = other.total_;
        resetMemo();
        return *this;
    }
    Pics &operator=(Pics &&other) noexcept
    {
        cells_ = std::move(other.cells_);
        total_ = other.total_;
        resetMemo();
        other.resetMemo();
        return *this;
    }

    /** Add @p cycles to (unit @p pc, signature @p psv). */
    void add(InstIndex pc, Psv psv, double cycles);

    /**
     * Pre-size the cell table for @p cells expected (unit, signature)
     * components. A Pics on the simulate/replay hot path grows to one
     * cell per live (pc, signature) pair; reserving up front (e.g. from
     * the program's static-instruction count) avoids repeated rehashes
     * of a multi-megabyte table while the trace streams through.
     */
    void reserve(std::size_t cells) { cells_.reserve(cells); }

    /** Total attributed cycles. */
    double total() const { return total_; }

    /** Cycles attributed to a specific (unit, signature). */
    double cycles(std::uint32_t unit, std::uint16_t signature) const;

    /** Cycles attributed to a unit across all signatures. */
    double unitCycles(std::uint32_t unit) const;

    /** All components (unordered). */
    std::vector<PicsComponent> components() const;

    /** Number of distinct (unit, signature) components. */
    std::size_t size() const { return cells_.size(); }

    /** Units ranked by descending total cycles. */
    std::vector<std::uint32_t> topUnits(std::size_t n) const;

    /**
     * Project every signature onto @p event_mask, merging components
     * that become identical (the per-scheme golden projection of §4).
     */
    Pics masked(std::uint16_t event_mask) const;

    /** Rescale all components so that total() == new_total. */
    Pics normalized(double new_total) const;

    /**
     * Re-aggregate instruction-granularity stacks to @p g using the
     * program's symbol/basic-block information. Unit ids become basic
     * block ids, function ids + 1 (0 = anonymous), or 0.
     */
    Pics aggregated(const Program &prog, Granularity g) const;

    /**
     * The paper's error metric: E = (C_total - C_correct) / C_total with
     * C_correct = sum over components of min(this, golden), where this
     * Pics is first normalized to the golden total. Callers mask the
     * golden reference to the technique's event set beforehand.
     */
    double errorAgainst(const Pics &golden) const;

  private:
    static std::uint64_t key(std::uint32_t unit, std::uint16_t sig)
    {
        return (static_cast<std::uint64_t>(unit) << 16) | sig;
    }

    /**
     * Keys are (unit << 16) | signature, so with the standard library's
     * identity hash consecutive pcs with the same signature land 2^16
     * buckets apart while all signatures of one pc collide into adjacent
     * buckets; mixing restores uniform occupancy.
     */
    struct KeyHash
    {
        std::size_t operator()(std::uint64_t k) const noexcept
        {
            return static_cast<std::size_t>(mix64(k));
        }
    };

    void resetMemo()
    {
        lastKey_ = invalidKey;
        lastCell_ = nullptr;
    }

    std::unordered_map<std::uint64_t, double, KeyHash> cells_;
    double total_ = 0.0;

    /**
     * One-entry memo for add(): replay delivers long runs of cycles
     * attributed to the same (pc, signature) — a stalled instruction, a
     * tight loop — and the repeated hash-probe was measurable in the
     * batched inner loops. unordered_map references are stable across
     * rehash (only erase invalidates, and Pics never erases), so the
     * cached cell pointer stays valid as the table grows. Keys are
     * (unit << 16) | signature with a 32-bit unit, so bit 63 can never
     * be set on a real key.
     */
    static constexpr std::uint64_t invalidKey = ~0ull;
    std::uint64_t lastKey_ = invalidKey;
    double *lastCell_ = nullptr;
};

} // namespace tea

#endif // TEA_PROFILERS_PICS_HH
