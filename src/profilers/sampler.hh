/**
 * @file
 * Statistical PICS samplers: TEA, NCI-TEA, AMD IBS, Arm SPE and IBM RIS
 * (plus TIP, the event-less time-proportional profiler), all modelled
 * out-of-band on the same cycle trace so every technique samples in the
 * exact same cycle (Section 4's methodology).
 *
 * Policies (Section 5):
 *  - TimeProportional (TEA, TIP): TIP attribution. Compute cycles split
 *    across committing micro-ops; Stalled/Drained samples delayed until
 *    the next commit so the PSV is final; Flushed samples attributed to
 *    the last-committed instruction.
 *  - NextCommitting (NCI-TEA, Intel PEBS style): as above, but Flushed
 *    samples go to the next-committing instruction, which misattributes
 *    flush cycles.
 *  - DispatchTag (IBS, SPE): the next micro-op to dispatch after the
 *    sample fires is tagged; the sample completes when it retires.
 *  - FetchTag (RIS): as DispatchTag, but tags at fetch.
 */

#ifndef TEA_PROFILERS_SAMPLER_HH
#define TEA_PROFILERS_SAMPLER_HH

#include <cstdint>
#include <string>

#include "core/trace.hh"
#include "events/event.hh"
#include "profilers/pics.hh"
#include "profilers/sample_record.hh"

namespace tea {

/** Sample-attribution policy. */
enum class SamplePolicy
{
    TimeProportional,
    NextCommitting,
    DispatchTag,
    FetchTag,
};

/** Short name of a policy. */
const char *samplePolicyName(SamplePolicy p);

/** Configuration of one sampling technique. */
struct SamplerConfig
{
    std::string name;     ///< e.g. "TEA", "IBS"
    SamplePolicy policy = SamplePolicy::TimeProportional;
    std::uint16_t eventMask = 0x1ff; ///< supported events (Table 1)
    Cycle period = 127;   ///< cycles between samples
    Cycle phase = 0;      ///< first sample cycle offset
};

/** Pre-built configurations for the techniques evaluated in the paper. */
SamplerConfig teaConfig(Cycle period = 127);
SamplerConfig nciTeaConfig(Cycle period = 127);
SamplerConfig ibsConfig(Cycle period = 127);
SamplerConfig speConfig(Cycle period = 127);
SamplerConfig risConfig(Cycle period = 127);
SamplerConfig tipConfig(Cycle period = 127);
/**
 * The dispatch-tagged TEA variant the paper evaluated but cut for space
 * (Section 5): TEA's full event set with IBS-style dispatch tagging.
 * Expected to land at IBS/SPE/RIS-level error, demonstrating that
 * time-proportional sampling -- not the event set -- is what matters.
 */
SamplerConfig dtagTeaConfig(Cycle period = 127);

/**
 * A sampling PICS collector attached to the cycle trace.
 *
 * `final` lets the batched replay path (replayChunk delivering whole
 * chunks through onBatch) devirtualize the per-kind calls inside the
 * batch loop into direct, inlinable ones.
 */
class TechniqueSampler final : public TraceSink
{
  public:
    explicit TechniqueSampler(SamplerConfig cfg);

    void onCycle(const CycleRecord &rec) override;
    void onDispatch(const UopRecord &rec) override;
    void onFetch(const UopRecord &rec) override;
    void onRetire(const RetireRecord &rec) override;
    void onEnd(Cycle final_cycle) override;
    void onBatch(const TraceEvent *events, std::size_t n) override;

    const SamplerConfig &config() const { return cfg_; }

    /**
     * Additionally emit every completed sample as an 88-byte record to
     * @p writer (the interrupt-handler path), stamped with the given
     * logical core / process / thread identifiers.
     */
    void setRecorder(SampleWriter *writer, std::uint16_t core_id = 0,
                     std::uint32_t pid = 1, std::uint32_t tid = 1);

    /** Sampled PICS (each sample weighted by the sampling period). */
    const Pics &pics() const { return pics_; }

    /**
     * Pre-size the PICS table for a program with @p static_insts static
     * instructions (samplers see a sparser signature mix than the golden
     * reference).
     */
    void reserveCells(std::size_t static_insts)
    {
        pics_.reserve(2 * static_insts);
    }

    /** Samples taken (attributed to an instruction). */
    std::uint64_t samplesTaken() const { return samplesTaken_; }

    /** Samples dropped (tag still in flight, or pending at end). */
    std::uint64_t samplesDropped() const { return samplesDropped_; }

  private:
    void takeSample(const CycleRecord &rec);
    void tag(const UopRecord &rec, SamplePolicy stage);
    void emitRecord(Cycle timestamp, CommitState state, unsigned count,
                    const std::uint64_t *addrs,
                    const std::uint16_t *psvs);

    SamplerConfig cfg_;
    Pics pics_;
    SampleWriter *recorder_ = nullptr;
    std::uint16_t coreId_ = 0;
    std::uint32_t pid_ = 1;
    std::uint32_t tid_ = 1;
    std::uint64_t samplesTaken_ = 0;
    std::uint64_t samplesDropped_ = 0;

    double pendingWeight_ = 0.0;       ///< TP/NCI delayed sample weight
    std::uint64_t pendingCount_ = 0;   ///< fires folded into the weight
    bool armed_ = false;               ///< tagging sample requested
    SeqNum taggedSeq_ = invalidSeqNum; ///< tagged micro-op in flight
};

} // namespace tea

#endif // TEA_PROFILERS_SAMPLER_HH
