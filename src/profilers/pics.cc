#include "profilers/pics.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tea {

const char *
granularityName(Granularity g)
{
    switch (g) {
      case Granularity::Instruction: return "instruction";
      case Granularity::BasicBlock: return "basic-block";
      case Granularity::Function: return "function";
      case Granularity::Application: return "application";
    }
    tea_panic("unknown granularity");
}

// tea_lint: hot
void
Pics::add(InstIndex pc, Psv psv, double cycles)
{
    if (cycles <= 0.0)
        return;
    const std::uint64_t k = key(pc, psv.bits());
    if (k != lastKey_) {
        lastCell_ = &cells_[k];
        lastKey_ = k;
    }
    *lastCell_ += cycles;
    total_ += cycles;
}

double
Pics::cycles(std::uint32_t unit, std::uint16_t signature) const
{
    auto it = cells_.find(key(unit, signature));
    return it == cells_.end() ? 0.0 : it->second;
}

double
Pics::unitCycles(std::uint32_t unit) const
{
    double sum = 0.0;
    for (const auto &[k, v] : cells_) {
        if ((k >> 16) == unit)
            sum += v;
    }
    return sum;
}

std::vector<PicsComponent>
Pics::components() const
{
    std::vector<PicsComponent> out;
    out.reserve(cells_.size());
    for (const auto &[k, v] : cells_) {
        out.push_back(PicsComponent{static_cast<std::uint32_t>(k >> 16),
                                    static_cast<std::uint16_t>(k & 0xffff),
                                    v});
    }
    return out;
}

std::vector<std::uint32_t>
Pics::topUnits(std::size_t n) const
{
    std::unordered_map<std::uint32_t, double> per_unit;
    for (const auto &[k, v] : cells_)
        per_unit[static_cast<std::uint32_t>(k >> 16)] += v;
    std::vector<std::pair<std::uint32_t, double>> ranked(per_unit.begin(),
                                                         per_unit.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto &a,
                                               const auto &b) {
        if (a.second != b.second)
            return a.second > b.second;
        return a.first < b.first;
    });
    std::vector<std::uint32_t> out;
    for (std::size_t i = 0; i < ranked.size() && i < n; ++i)
        out.push_back(ranked[i].first);
    return out;
}

Pics
Pics::masked(std::uint16_t event_mask) const
{
    Pics out;
    for (const auto &[k, v] : cells_) {
        auto unit = static_cast<std::uint32_t>(k >> 16);
        auto sig = static_cast<std::uint16_t>(k & 0xffff & event_mask);
        out.cells_[key(unit, sig)] += v;
    }
    out.total_ = total_;
    return out;
}

Pics
Pics::normalized(double new_total) const
{
    Pics out;
    if (total_ <= 0.0)
        return out;
    double scale = new_total / total_;
    for (const auto &[k, v] : cells_)
        out.cells_[k] = v * scale;
    out.total_ = new_total;
    return out;
}

Pics
Pics::aggregated(const Program &prog, Granularity g) const
{
    if (g == Granularity::Instruction)
        return *this;
    std::vector<std::uint32_t> bbs;
    if (g == Granularity::BasicBlock)
        bbs = prog.basicBlockIds();

    Pics out;
    for (const auto &[k, v] : cells_) {
        auto pc = static_cast<std::uint32_t>(k >> 16);
        auto sig = static_cast<std::uint16_t>(k & 0xffff);
        std::uint32_t unit = 0;
        switch (g) {
          case Granularity::BasicBlock:
            unit = pc < bbs.size() ? bbs[pc] : 0;
            break;
          case Granularity::Function:
            unit = static_cast<std::uint32_t>(
                prog.functionOf(static_cast<InstIndex>(pc)) + 1);
            break;
          case Granularity::Application:
          case Granularity::Instruction:
            unit = 0;
            break;
        }
        out.cells_[key(unit, sig)] += v;
        out.total_ += v;
    }
    return out;
}

double
Pics::errorAgainst(const Pics &golden) const
{
    if (golden.total() <= 0.0)
        return 0.0;
    Pics norm = normalized(golden.total());
    double correct = 0.0;
    for (const auto &[k, v] : golden.cells_) {
        auto it = norm.cells_.find(k);
        if (it != norm.cells_.end())
            correct += std::min(v, it->second);
    }
    return (golden.total() - correct) / golden.total();
}

} // namespace tea
