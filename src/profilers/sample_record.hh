/**
 * @file
 * The software side of TEA (Section 3, "Sample collection and PICS
 * generation"): the 88-byte sample record the interrupt handler reads
 * from TEA's CSRs and appends to a memory buffer, the buffer itself
 * (with binary file serialization, standing in for perf's ring buffer +
 * file), and the post-processing that rebuilds PICS from a sample file.
 */

#ifndef TEA_PROFILERS_SAMPLE_RECORD_HH
#define TEA_PROFILERS_SAMPLE_RECORD_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "events/event.hh"
#include "profilers/pics.hh"

namespace tea {

/**
 * One sample as written by the sampling interrupt handler: timestamp,
 * commit state and valid count, up to four instruction addresses with
 * their PSVs, and the logical core / process / thread identifiers the
 * handler reads from other CSRs. 88 bytes, matching the paper.
 */
struct SampleRecord
{
    std::uint64_t timestamp = 0;            ///< sample cycle
    std::array<std::uint64_t, 4> addrs{};   ///< instruction addresses
    std::array<std::uint16_t, 4> psvs{};    ///< PSVs (9 bits used each)
    std::uint32_t pid = 0;                  ///< process identifier
    std::uint32_t tid = 0;                  ///< thread identifier
    std::uint16_t coreId = 0;               ///< logical core identifier
    std::uint16_t flags = 0;                ///< state (low 2b) | count<<2
    std::array<std::uint8_t, 28> reserved{}; ///< pad to the 88 B format

    /** Commit state at the sample. */
    CommitState state() const
    {
        return static_cast<CommitState>(flags & 0x3);
    }

    /** Number of valid (addr, psv) pairs (1..4). */
    unsigned count() const { return (flags >> 2) & 0x7; }

    /** Compose the flags field. */
    static std::uint16_t
    makeFlags(CommitState state, unsigned count)
    {
        return static_cast<std::uint16_t>(
            (static_cast<unsigned>(state) & 0x3) | ((count & 0x7) << 2));
    }
};

static_assert(sizeof(SampleRecord) == 88,
              "sample record must match the paper's 88-byte format");

/** Destination for completed sample records. */
class SampleWriter
{
  public:
    virtual ~SampleWriter() = default;

    /** Deliver one completed sample. */
    virtual void onSample(const SampleRecord &rec) = 0;
};

/**
 * In-memory sample buffer with binary file serialization; the software
 * half of the paper's perf-style collection flow.
 */
class SampleBuffer : public SampleWriter
{
  public:
    void onSample(const SampleRecord &rec) override;

    const std::vector<SampleRecord> &records() const { return records_; }
    std::size_t size() const { return records_.size(); }

    /** Total buffer footprint in bytes (88 B per sample). */
    std::size_t bytes() const
    {
        return records_.size() * sizeof(SampleRecord);
    }

    /** Write all records to @p path (fatal on I/O error). */
    void writeFile(const std::string &path) const;

    /** Load a sample file written by writeFile (fatal on I/O error). */
    static std::vector<SampleRecord> readFile(const std::string &path);

  private:
    std::vector<SampleRecord> records_;
};

/**
 * Post-process samples into PICS (the paper's offline tool): each sample
 * contributes @p period cycles, split evenly across its valid pairs for
 * Compute samples. @p event_mask restricts signatures to a technique's
 * event set; @p core_filter of -1 keeps all cores.
 */
Pics picsFromRecords(const std::vector<SampleRecord> &records,
                     Cycle period, std::uint16_t event_mask = 0x1ff,
                     int core_filter = -1);

} // namespace tea

#endif // TEA_PROFILERS_SAMPLE_RECORD_HH
