/**
 * @file
 * Compare profiling techniques on one benchmark: run IBS, SPE, RIS,
 * NCI-TEA and TEA out-of-band on the same trace and show how differently
 * they explain the same execution (the paper's central experiment, on a
 * single benchmark of your choosing).
 *
 * Usage: compare_techniques [benchmark] [threads]
 *
 * All techniques replay the same captured trace out-of-band; pass a
 * thread count (or set TEA_THREADS) to score them in parallel — the
 * results are bit-identical at any thread count.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/report.hh"
#include "analysis/runner.hh"
#include "common/table.hh"

using namespace tea;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "omnetpp";
    RunnerOptions opts = RunnerOptions::fromEnv();
    if (argc > 2)
        opts.threads = static_cast<unsigned>(std::atoi(argv[2]));
    ExperimentResult res;
    try {
        res = runBenchmark(name, standardTechniques(), opts);
    } catch (const std::exception &e) {
        // A contained experiment failure (e.g. replay workers dying
        // under injected faults) must end as a clean nonzero exit, not
        // std::terminate.
        std::fprintf(stderr, "compare_techniques: %s\n", e.what());
        return 1;
    }
    double total = res.golden->pics().total();

    Table t;
    t.header({"technique", "policy", "events", "samples", "dropped",
              "error (instr)", "error (func)"});
    for (const TechniqueResult &tr : res.techniques) {
        t.row({tr.config.name, samplePolicyName(tr.config.policy),
               std::to_string(Psv(tr.config.eventMask).popcount()),
               fmtCount(tr.samplesTaken), fmtCount(tr.samplesDropped),
               fmtPercent(res.errorOf(tr, Granularity::Instruction)),
               fmtPercent(res.errorOf(tr, Granularity::Function))});
    }
    std::printf("=== %s (%s cycles) ===\n", name.c_str(),
                fmtCount(res.stats.cycles).c_str());
    t.print();
    std::fputs(res.replay.render().c_str(), stdout);

    std::puts("\n-- What each technique thinks the #1 instruction is:");
    std::puts("golden reference:");
    std::fputs(renderTopInstructions(res.program, res.golden->pics(), 1,
                                     total)
                   .c_str(),
               stdout);
    for (const TechniqueResult &tr : res.techniques) {
        std::printf("%s:\n", tr.config.name.c_str());
        std::fputs(renderTopInstructions(res.program,
                                         tr.pics.normalized(total), 1,
                                         total)
                       .c_str(),
                   stdout);
    }
    return 0;
}
