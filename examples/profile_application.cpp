/**
 * @file
 * Developer workflow: profile an application with TEA and read its PICS
 * at instruction and function granularity -- the Section 6 use case.
 *
 * Usage: profile_application [benchmark] [period]
 * Defaults: lbm at one sample per 127 cycles.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/report.hh"
#include "analysis/runner.hh"
#include "common/table.hh"

using namespace tea;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "lbm";
    Cycle period = argc > 2 ? static_cast<Cycle>(std::atoll(argv[2]))
                            : 127;

    ExperimentResult res = runBenchmark(name, {teaConfig(period)});
    const TechniqueResult &tea = res.technique("TEA");

    std::printf("=== %s: %s cycles, IPC %.2f, %s samples "
                "(%.2f%% est. overhead at this rate) ===\n\n",
                name.c_str(), fmtCount(res.stats.cycles).c_str(),
                res.stats.ipc(), fmtCount(tea.samplesTaken).c_str(),
                100.0 * 8800.0 / static_cast<double>(period) / 100.0);

    std::puts("-- Per-instruction cycle stacks (top 8):");
    std::fputs(renderTopInstructions(res.program, tea.pics, 8,
                                     tea.pics.total())
                   .c_str(),
               stdout);

    std::puts("\n-- Per-function totals:");
    Pics by_fn = tea.pics.aggregated(res.program, Granularity::Function);
    Table t;
    t.header({"function", "cycles", "share", "top signature"});
    for (std::uint32_t unit : by_fn.topUnits(8)) {
        double cycles = by_fn.unitCycles(unit);
        std::string top_sig = "-";
        double best = 0.0;
        for (const PicsComponent &c : by_fn.components()) {
            if (c.unit == unit && c.cycles > best) {
                best = c.cycles;
                top_sig = Psv(c.signature).name();
            }
        }
        t.row({res.program.functionName(static_cast<int>(unit) - 1),
               fmtCount(static_cast<std::uint64_t>(cycles)),
               fmtPercent(cycles / by_fn.total()), top_sig});
    }
    t.print();

    std::printf("\naccuracy vs golden reference on this run: %.1f%%\n",
                100.0 * res.errorOf(tea));
    return 0;
}
