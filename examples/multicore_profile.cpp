/**
 * @file
 * Multi-core profiling: two benchmarks co-run on a two-core system that
 * shares the LLC, DRAM bandwidth and the L2 TLB; each core has its own
 * TEA unit, and the sample records carry logical core / process ids so
 * the tool builds per-thread PICS (Section 3's multi-threaded claim).
 *
 * Usage: multicore_profile [benchA] [benchB]
 */

#include <cstdio>
#include <string>

#include "analysis/report.hh"
#include "core/system.hh"
#include "profilers/sample_record.hh"
#include "profilers/sampler.hh"
#include "workloads/workload.hh"

using namespace tea;

int
main(int argc, char **argv)
{
    std::string name_a = argc > 1 ? argv[1] : "fotonik3d";
    std::string name_b = argc > 2 ? argv[2] : "exchange2";

    CoreConfig cfg;
    System system(cfg);

    Workload a = workloads::byName(name_a);
    Workload b = workloads::byName(name_b);
    unsigned core_a = system.addCore(std::move(a.program),
                                     std::move(a.initial));
    unsigned core_b = system.addCore(std::move(b.program),
                                     std::move(b.initial));

    // One TEA unit per physical core, one shared sample buffer (the
    // kernel's perf buffer); records are demultiplexed by core id.
    SampleBuffer buffer;
    TechniqueSampler tea_a{teaConfig()};
    TechniqueSampler tea_b{teaConfig()};
    tea_a.setRecorder(&buffer, static_cast<std::uint16_t>(core_a), 100,
                      100);
    tea_b.setRecorder(&buffer, static_cast<std::uint16_t>(core_b), 200,
                      200);
    system.addSink(core_a, &tea_a);
    system.addSink(core_b, &tea_b);

    system.run();

    std::printf("co-ran %s (core %u, %llu cycles) and %s (core %u, %llu "
                "cycles); shared buffer holds %zu samples\n\n",
                name_a.c_str(), core_a,
                static_cast<unsigned long long>(
                    system.core(core_a).stats().cycles),
                name_b.c_str(), core_b,
                static_cast<unsigned long long>(
                    system.core(core_b).stats().cycles),
                buffer.size());

    for (unsigned id : {core_a, core_b}) {
        Pics pics = picsFromRecords(buffer.records(), 127,
                                    teaEventSet().mask,
                                    static_cast<int>(id));
        std::printf("-- per-thread PICS, core %u (top 4):\n", id);
        std::fputs(renderTopInstructions(system.program(id), pics, 4,
                                         pics.total())
                       .c_str(),
                   stdout);
    }
    std::puts("\nNote how the memory-bound thread's stacks keep their "
              "cache-miss signatures while the compute-bound thread's "
              "stay Base/FL-MB -- per-thread attribution survives the "
              "shared memory system.");
    return 0;
}
