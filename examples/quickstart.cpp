/**
 * @file
 * Quickstart: write a small program against the mini-RISC ISA, run it on
 * the BOOM-class core with a TEA sampler attached, and print the
 * resulting time-proportional Per-Instruction Cycle Stacks (PICS).
 *
 * This is the 60-second tour of the public API:
 *   ProgramBuilder -> Workload -> Core + TechniqueSampler -> Pics.
 */

#include <cstdio>

#include "analysis/report.hh"
#include "common/rng.hh"
#include "core/core.hh"
#include "isa/builder.hh"
#include "profilers/sampler.hh"

using namespace tea;

int
main()
{
    // 1. Write a program: sum a 1 MiB array with a data-dependent branch.
    constexpr std::int64_t base = 0x2000'0000;
    constexpr std::int64_t lines = 16 * 1024; // 1 MiB

    ProgramBuilder b("quickstart");
    b.beginFunction("sum_array");
    b.li(x(5), base);
    b.li(x(6), base + lines * 64);
    b.li(x(7), 0); // sum
    Label top = b.here();
    b.ld(x(8), x(5), 0); // one load per cache line
    Label skip = b.label();
    b.beq(x(8), x(0), skip);
    b.addi(x(7), x(7), 1);
    b.bind(skip);
    b.addi(x(5), x(5), 64);
    b.blt(x(5), x(6), top);
    b.halt();
    b.endFunction();
    Program prog = b.build();

    // 2. Prepare initial architectural state (memory image).
    ArchState initial;
    Rng rng(7);
    for (std::int64_t i = 0; i < lines; ++i)
        initial.mem.write(static_cast<Addr>(base + i * 64), rng.below(2));

    // 3. Run it on the out-of-order core with TEA attached.
    CoreConfig cfg;
    TechniqueSampler tea{teaConfig(/*period=*/127)};
    Core core(cfg, prog, std::move(initial));
    core.addSink(&tea);
    core.run();

    // 4. Inspect the PICS: which instructions take the time, and why?
    std::printf("ran %s: %llu cycles, IPC %.2f, %llu TEA samples\n\n",
                prog.name().c_str(),
                static_cast<unsigned long long>(core.stats().cycles),
                core.stats().ipc(),
                static_cast<unsigned long long>(tea.samplesTaken()));
    std::puts("top-5 instructions by time, with event breakdown:");
    std::fputs(renderTopInstructions(prog, tea.pics(), 5,
                                     tea.pics().total())
                   .c_str(),
               stdout);
    std::puts("\nReading the stacks: ST-L1/ST-LLC mark time the load "
              "stalls commit on cache misses; FL-MB marks time lost to "
              "the mispredicted data-dependent branch; Base is execution "
              "with no performance event.");
    return 0;
}
