/**
 * @file
 * PICS diff: profile a workload before and after an optimization and
 * print the per-instruction deltas -- the workflow behind the paper's
 * Fig 11 ("sweeping prefetch distances to identify the point where load
 * latency and store bandwidth balance out").
 *
 * Usage: pics_diff [prefetch-distance]   (default 3; compares to 0)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "analysis/runner.hh"
#include "common/table.hh"
#include "isa/disasm.hh"

using namespace tea;

int
main(int argc, char **argv)
{
    unsigned distance = argc > 1
                            ? static_cast<unsigned>(std::atoi(argv[1]))
                            : 3;

    workloads::LbmParams before_params;
    workloads::LbmParams after_params;
    after_params.prefetchDistance = distance;

    ExperimentResult before = runWorkload(workloads::lbm(before_params),
                                          {teaConfig()});
    ExperimentResult after = runWorkload(workloads::lbm(after_params),
                                         {teaConfig()});
    const Pics &pb = before.technique("TEA").pics;
    const Pics &pa = after.technique("TEA").pics;

    std::printf("lbm: %s cycles -> %s cycles with prefetch distance %u "
                "(speedup %.2fx)\n\n",
                fmtCount(before.stats.cycles).c_str(),
                fmtCount(after.stats.cycles).c_str(), distance,
                static_cast<double>(before.stats.cycles) /
                    static_cast<double>(after.stats.cycles));

    // The programs differ (prefetches inserted), so align instructions
    // by disassembly+occurrence rather than index.
    struct Row
    {
        std::string disasm;
        double before = 0.0;
        double after = 0.0;
    };
    std::vector<Row> rows;
    auto accumulate = [&](const Pics &pics, const Program &prog,
                          bool is_before) {
        for (std::uint32_t unit : pics.topUnits(1000)) {
            std::string d =
                disassemble(prog.inst(static_cast<InstIndex>(unit)));
            auto it = std::find_if(rows.begin(), rows.end(),
                                   [&](const Row &r) {
                                       return r.disasm == d;
                                   });
            if (it == rows.end()) {
                rows.push_back(Row{d, 0.0, 0.0});
                it = rows.end() - 1;
            }
            (is_before ? it->before : it->after) +=
                pics.unitCycles(unit);
        }
    };
    accumulate(pb, before.program, true);
    accumulate(pa, after.program, false);

    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        return std::abs(a.before - a.after) >
               std::abs(b.before - b.after);
    });

    Table t;
    t.header({"instruction", "cycles before", "cycles after", "delta"});
    unsigned shown = 0;
    for (const Row &r : rows) {
        if (++shown > 10)
            break;
        double delta = r.after - r.before;
        std::string signed_delta(1, delta >= 0 ? '+' : '-');
        signed_delta +=
            fmtCount(static_cast<std::uint64_t>(std::abs(delta)));
        t.row({r.disasm,
               fmtCount(static_cast<std::uint64_t>(r.before)),
               fmtCount(static_cast<std::uint64_t>(r.after)),
               signed_delta});
    }
    t.print();
    std::puts("\nThe critical load's cycles collapse; store-side cycles "
              "(DR-SQ pressure) absorb part of the win -- exactly the "
              "trade-off Fig 11 sweeps.");
    return 0;
}
