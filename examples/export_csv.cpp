/**
 * @file
 * Export TEA PICS as CSV for external plotting: one row per
 * (instruction, signature) component with disassembly, function and
 * share columns.
 *
 * Usage: export_csv [benchmark] [output.csv]
 */

#include <cstdio>
#include <string>

#include "analysis/runner.hh"
#include "isa/disasm.hh"

using namespace tea;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "bwaves";
    std::string path = argc > 2 ? argv[2] : "/tmp/tea_pics.csv";

    ExperimentResult res = runBenchmark(name, {teaConfig()});
    const Pics &pics = res.technique("TEA").pics;

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
    }
    std::fprintf(f, "index,pc,function,disassembly,signature,cycles,"
                    "share\n");
    unsigned rows = 0;
    for (const PicsComponent &c : pics.components()) {
        auto idx = static_cast<InstIndex>(c.unit);
        std::fprintf(f, "%u,0x%llx,%s,\"%s\",%s,%.1f,%.6f\n", idx,
                     static_cast<unsigned long long>(
                         res.program.pcOf(idx)),
                     res.program
                         .functionName(res.program.functionOf(idx))
                         .c_str(),
                     disassemble(res.program.inst(idx)).c_str(),
                     Psv(c.signature).name().c_str(), c.cycles,
                     c.cycles / pics.total());
        ++rows;
    }
    std::fclose(f);
    std::printf("wrote %u PICS components for %s to %s\n", rows,
                name.c_str(), path.c_str());
    return 0;
}
