/**
 * @file
 * Example: run workloads on the out-of-order core model and print the
 * commit-state breakdown and event statistics the paper builds on.
 *
 * Usage: pipeline_stats [workload ...]
 * With no arguments, runs the whole SPEC-like suite.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/core.hh"
#include "workloads/workload.hh"

using namespace tea;

int
main(int argc, char **argv)
{
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i)
        names.emplace_back(argv[i]);
    if (names.empty())
        names = workloads::suiteNames();

    Table t;
    t.header({"benchmark", "cycles", "uops", "IPC", "compute", "stalled",
              "drained", "flushed", "mispred", "MO", "events/uop"});

    for (const std::string &name : names) {
        Workload w = workloads::byName(name);
        CoreConfig cfg;
        Core core(cfg, w.program, std::move(w.initial));
        core.run();
        const CoreStats &s = core.stats();
        auto frac = [&](CommitState st) {
            return fmtPercent(
                static_cast<double>(
                    s.stateCycles[static_cast<unsigned>(st)]) /
                static_cast<double>(s.cycles));
        };
        t.row({name, fmtCount(s.cycles), fmtCount(s.committedUops),
               fmtDouble(s.ipc()), frac(CommitState::Compute),
               frac(CommitState::Stalled), frac(CommitState::Drained),
               frac(CommitState::Flushed), fmtCount(s.branchMispredicts),
               fmtCount(s.moViolations),
               fmtDouble(static_cast<double>(s.uopsWithEvents) /
                             static_cast<double>(s.committedUops),
                         4)});
    }
    t.print();
    return 0;
}
