/**
 * @file
 * The paper's out-of-band evaluation workflow (Section 4): simulate a
 * benchmark ONCE while dumping its cycle trace (the TraceDoctor role),
 * then evaluate any number of analysis configurations offline by
 * replaying the file -- "we run up to 15 configurations ... with a
 * single run because it enables fairly comparing analysis approaches as
 * they sample in the exact same cycle".
 *
 * Usage: trace_replay [benchmark] [trace-file]
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/core.hh"
#include "core/trace_io.hh"
#include "profilers/golden.hh"
#include "profilers/sampler.hh"
#include "workloads/workload.hh"

using namespace tea;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "mcf";
    std::string path = argc > 2 ? argv[2] : "/tmp/tea_trace.bin";

    // Pass 1: simulate once, dumping the trace.
    Workload w = workloads::byName(name);
    const Program prog = w.program; // keep for reporting
    CoreConfig cfg;
    Cycle sim_cycles = 0;
    {
        TraceWriter writer(path);
        Core core(cfg, w.program, std::move(w.initial));
        core.addSink(&writer);
        sim_cycles = core.run();
        std::printf("simulated %s once: %llu cycles, %llu trace events "
                    "-> %s\n",
                    name.c_str(),
                    static_cast<unsigned long long>(sim_cycles),
                    static_cast<unsigned long long>(
                        writer.eventsWritten()),
                    path.c_str());
    }

    // Pass 2: evaluate 15 analysis configurations offline (5 techniques
    // x 3 sampling frequencies), all from the single recorded run.
    GoldenReference golden;
    std::vector<std::unique_ptr<TechniqueSampler>> samplers;
    std::vector<TraceSink *> sinks{&golden};
    for (Cycle period : {509u, 127u, 31u}) {
        for (SamplerConfig c :
             {ibsConfig(period), speConfig(period), risConfig(period),
              nciTeaConfig(period), teaConfig(period)}) {
            samplers.push_back(std::make_unique<TechniqueSampler>(c));
            sinks.push_back(samplers.back().get());
        }
    }
    Cycle replayed = replayTrace(path, sinks);
    std::printf("replayed %llu cycles through %zu configurations\n\n",
                static_cast<unsigned long long>(replayed),
                samplers.size());

    Table t;
    t.header({"technique", "period", "samples", "error vs golden"});
    for (const auto &s : samplers) {
        t.row({s->config().name, std::to_string(s->config().period),
               fmtCount(s->samplesTaken()),
               fmtPercent(s->pics().errorAgainst(golden.pics()))});
    }
    t.print();
    std::remove(path.c_str());
    return 0;
}
