/**
 * @file
 * The paper's offline PICS tool (Section 3): TEA's interrupt handler
 * writes 88-byte sample records to a buffer that is flushed to a file;
 * when the application terminates, this tool aggregates the samples of
 * each static instruction into PICS.
 *
 * Usage:
 *   pics_tool record <benchmark> <sample-file> [period]
 *   pics_tool report <benchmark> <sample-file> [period]
 *   pics_tool demo                (record + report via a temp file)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/report.hh"
#include "core/core.hh"
#include "profilers/sample_record.hh"
#include "profilers/sampler.hh"
#include "workloads/workload.hh"

using namespace tea;

namespace {

int
record(const std::string &bench, const std::string &path, Cycle period)
{
    Workload w = workloads::byName(bench);
    CoreConfig cfg;
    TechniqueSampler tea{teaConfig(period)};
    SampleBuffer buffer;
    tea.setRecorder(&buffer, /*core=*/0, /*pid=*/4242, /*tid=*/4242);
    Core core(cfg, w.program, std::move(w.initial));
    core.addSink(&tea);
    core.run();
    buffer.writeFile(path);
    std::printf("recorded %zu samples (%zu KiB of 88 B records) over %llu "
                "cycles to %s\n",
                buffer.size(), buffer.bytes() / 1024,
                static_cast<unsigned long long>(core.stats().cycles),
                path.c_str());
    return 0;
}

int
report(const std::string &bench, const std::string &path, Cycle period)
{
    // Rebuild the program only to map sample addresses to symbols; the
    // cycle stacks themselves come purely from the sample file.
    Workload w = workloads::byName(bench);
    auto records = SampleBuffer::readFile(path);
    Pics pics = picsFromRecords(records, period);
    std::printf("%zu samples -> %.0f attributed cycles\n", records.size(),
                pics.total());
    std::puts("top-8 per-instruction cycle stacks:");
    std::fputs(
        renderTopInstructions(w.program, pics, 8, pics.total()).c_str(),
        stdout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && std::strcmp(argv[1], "demo") == 0) {
        std::string path = "/tmp/tea_samples.bin";
        record("nab", path, 127);
        return report("nab", path, 127);
    }
    if (argc < 4) {
        std::fprintf(stderr,
                     "usage: %s record|report <benchmark> <file> "
                     "[period]\n       %s demo\n",
                     argv[0], argv[0]);
        return argc == 1 ? 0 : 2; // bare invocation prints usage, ok
    }
    Cycle period = argc > 4 ? static_cast<Cycle>(std::atoll(argv[4]))
                            : 127;
    if (std::strcmp(argv[1], "record") == 0)
        return record(argv[2], argv[3], period);
    if (std::strcmp(argv[1], "report") == 0)
        return report(argv[2], argv[3], period);
    std::fprintf(stderr, "unknown mode '%s'\n", argv[1]);
    return 2;
}
