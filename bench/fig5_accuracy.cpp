/**
 * @file
 * Figure 5: PICS error per benchmark for IBS, SPE, RIS, NCI-TEA and TEA
 * against the golden reference (instruction granularity, default
 * sampling frequency).
 *
 * Paper result: TEA 2.1% average (max 7.7%); NCI-TEA 11.3% (max 22.0%);
 * RIS 56.0%, IBS 55.6%, SPE 55.5% (each up to 79.7%).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "analysis/parallel_runner.hh"
#include "analysis/runner.hh"
#include "common/table.hh"

using namespace tea;

int
main()
{
    // Up to TEA_THREADS benchmarks simulate concurrently (default: all
    // hardware threads); within each, every technique observes the one
    // trace out-of-band. Results are bit-identical to a serial loop.
    // Set TEA_RUNNER_STATS=1 to print per-benchmark wall times.
    RunnerOptions opts = RunnerOptions::fromEnv();
    const bool show_stats = std::getenv("TEA_RUNNER_STATS") != nullptr;

    std::vector<SamplerConfig> techs = standardTechniques();
    std::vector<std::string> names = workloads::suiteNames();

    Table t;
    t.header({"benchmark", "IBS", "SPE", "RIS", "NCI-TEA", "TEA"});
    std::vector<double> sums(techs.size(), 0.0);
    std::vector<double> maxima(techs.size(), 0.0);

    const auto start = std::chrono::steady_clock::now();
    std::vector<ExperimentResult> all =
        runBenchmarkSuite(names, techs, opts);
    const double total_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    for (std::size_t n = 0; n < names.size(); ++n) {
        const ExperimentResult &res = all[n];
        if (show_stats) {
            std::printf("%s: %s\n", names[n].c_str(),
                        res.replay.renderLine().c_str());
        }
        std::vector<std::string> row{names[n]};
        for (std::size_t i = 0; i < res.techniques.size(); ++i) {
            double err = res.errorOf(res.techniques[i]);
            sums[i] += err;
            maxima[i] = std::max(maxima[i], err);
            row.push_back(fmtPercent(err));
        }
        t.row(row);
    }

    t.separator();
    std::vector<std::string> avg{"average"};
    std::vector<std::string> mx{"max"};
    for (std::size_t i = 0; i < techs.size(); ++i) {
        avg.push_back(
            fmtPercent(sums[i] / static_cast<double>(names.size())));
        mx.push_back(fmtPercent(maxima[i]));
    }
    t.row(avg);
    t.row(mx);

    std::puts("Figure 5: PICS error vs golden reference "
              "(instruction granularity)");
    t.print();
    std::puts("Paper: IBS 55.6% / SPE 55.5% / RIS 56.0% / NCI-TEA 11.3% / "
              "TEA 2.1% average.");
    std::printf("[%u replay thread(s), %.2f s total]\n", opts.threads,
                total_seconds);
    return suiteExitCode(all);
}
