/**
 * @file
 * Figure 5: PICS error per benchmark for IBS, SPE, RIS, NCI-TEA and TEA
 * against the golden reference (instruction granularity, default
 * sampling frequency).
 *
 * Paper result: TEA 2.1% average (max 7.7%); NCI-TEA 11.3% (max 22.0%);
 * RIS 56.0%, IBS 55.6%, SPE 55.5% (each up to 79.7%).
 */

#include <cstdio>
#include <vector>

#include "analysis/runner.hh"
#include "common/table.hh"

using namespace tea;

int
main()
{
    std::vector<SamplerConfig> techs = standardTechniques();
    std::vector<std::string> names = workloads::suiteNames();

    Table t;
    t.header({"benchmark", "IBS", "SPE", "RIS", "NCI-TEA", "TEA"});
    std::vector<double> sums(techs.size(), 0.0);
    std::vector<double> maxima(techs.size(), 0.0);

    for (const std::string &name : names) {
        ExperimentResult res = runBenchmark(name, techs);
        std::vector<std::string> row{name};
        for (std::size_t i = 0; i < res.techniques.size(); ++i) {
            double err = res.errorOf(res.techniques[i]);
            sums[i] += err;
            maxima[i] = std::max(maxima[i], err);
            row.push_back(fmtPercent(err));
        }
        t.row(row);
    }

    t.separator();
    std::vector<std::string> avg{"average"};
    std::vector<std::string> mx{"max"};
    for (std::size_t i = 0; i < techs.size(); ++i) {
        avg.push_back(
            fmtPercent(sums[i] / static_cast<double>(names.size())));
        mx.push_back(fmtPercent(maxima[i]));
    }
    t.row(avg);
    t.row(mx);

    std::puts("Figure 5: PICS error vs golden reference "
              "(instruction granularity)");
    t.print();
    std::puts("Paper: IBS 55.6% / SPE 55.5% / RIS 56.0% / NCI-TEA 11.3% / "
              "TEA 2.1% average.");
    return 0;
}
