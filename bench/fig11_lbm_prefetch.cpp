/**
 * @file
 * Figure 11: PICS and speedup for the most performance-critical load
 * and store of lbm across software-prefetch distances.
 *
 * Paper result: the load's impact drops with distance and saturates at
 * distance 4 (its stack becomes LLC hits, ST-L1); the store's impact
 * grows, dominated by full-store-queue (DR-SQ) categories; the optimal
 * distance is 3 with a speedup of 1.28x.
 */

#include <cstdio>
#include <vector>

#include "analysis/report.hh"
#include "analysis/runner.hh"
#include "common/table.hh"

using namespace tea;

namespace {

/** First load / first store of the inner loop in this program. */
InstIndex
findFirst(const Program &prog, bool want_store)
{
    for (InstIndex i = 0; i < prog.size(); ++i) {
        const StaticInst &si = prog.inst(i);
        if (want_store ? si.isStore() : si.isLoad())
            return i;
    }
    return invalidInstIndex;
}

} // namespace

int
main()
{
    Cycle base_cycles = 0;
    Table t;
    t.header({"distance", "cycles", "speedup", "load cycles%",
              "load top signature", "store cycles%",
              "store DR-SQ share"});

    std::vector<unsigned> distances = {0, 1, 2, 3, 4, 5, 6, 8};
    for (unsigned d : distances) {
        workloads::LbmParams p;
        p.prefetchDistance = d;
        ExperimentResult res = runWorkload(workloads::lbm(p),
                                           {teaConfig()});
        const Pics &gold = res.golden->pics();
        double total = gold.total();
        if (d == 0)
            base_cycles = res.stats.cycles;

        InstIndex load_pc = findFirst(res.program, false);
        InstIndex store_pc = findFirst(res.program, true);
        double load_cycles = gold.unitCycles(load_pc);
        double store_cycles = gold.unitCycles(store_pc);

        // Dominant signature of the load.
        std::string top_sig = "-";
        double top_val = 0.0;
        for (const PicsComponent &c : gold.components()) {
            if (c.unit == load_pc && c.cycles > top_val) {
                top_val = c.cycles;
                top_sig = Psv(c.signature).name();
            }
        }
        // DR-SQ-involving share of the store's stack.
        double drsq = 0.0;
        for (const PicsComponent &c : gold.components()) {
            if (c.unit == store_pc &&
                Psv(c.signature).test(Event::DrSq)) {
                drsq += c.cycles;
            }
        }

        t.row({std::to_string(d), fmtCount(res.stats.cycles),
               fmtDouble(static_cast<double>(base_cycles) /
                             static_cast<double>(res.stats.cycles)) +
                   "x",
               fmtPercent(load_cycles / total), top_sig,
               fmtPercent(store_cycles / total),
               store_cycles > 0.0 ? fmtPercent(drsq / store_cycles)
                                  : "-"});
    }

    std::puts("Figure 11: lbm PICS and speedup vs software-prefetch "
              "distance (TEA-generated)");
    t.print();
    std::puts("Paper: speedup saturates around distance 3-4 (1.28x); the "
              "load's stack turns into LLC hits (ST-L1) while the "
              "store's DR-SQ categories grow.");
    return 0;
}
