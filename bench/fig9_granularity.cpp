/**
 * @file
 * Figure 9: error at instruction and function granularity (basic-block
 * and application granularities are also reported; the paper notes they
 * follow the same trends).
 *
 * Paper result: TEA is uniformly the most accurate; the alternatives
 * improve at function granularity but less than expected, because their
 * cycles are systematically misattributed to the wrong events.
 */

#include <cstdio>
#include <vector>

#include "analysis/parallel_runner.hh"
#include "analysis/runner.hh"
#include "common/table.hh"

using namespace tea;

int
main()
{
    const Granularity grans[] = {Granularity::Instruction,
                                 Granularity::BasicBlock,
                                 Granularity::Function,
                                 Granularity::Application};
    std::vector<std::string> names = workloads::suiteNames();

    // Up to TEA_THREADS benchmarks simulate concurrently.
    RunnerOptions opts = RunnerOptions::fromEnv();
    std::vector<ExperimentResult> all =
        runBenchmarkSuite(names, standardTechniques(), opts);

    // sums[granularity][technique]
    double sums[4][5] = {};
    for (const ExperimentResult &res : all) {
        for (unsigned g = 0; g < 4; ++g) {
            for (unsigned t = 0; t < 5; ++t) {
                sums[g][t] +=
                    res.errorOf(res.techniques[t], grans[g]);
            }
        }
    }

    Table t;
    t.header({"granularity", "IBS", "SPE", "RIS", "NCI-TEA", "TEA"});
    for (unsigned g = 0; g < 4; ++g) {
        std::vector<std::string> row{granularityName(grans[g])};
        for (unsigned tch = 0; tch < 5; ++tch) {
            row.push_back(fmtPercent(
                sums[g][tch] / static_cast<double>(names.size())));
        }
        t.row(row);
    }

    std::puts("Figure 9: average error per analysis granularity");
    t.print();
    std::puts("Paper: TEA uniformly most accurate; IBS/SPE/RIS improve "
              "at function granularity but stay inaccurate because "
              "cycles are misattributed to the wrong events.");
    return suiteExitCode(all);
}
