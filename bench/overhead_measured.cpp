/**
 * @file
 * Measured sampling performance overhead: instead of only modelling the
 * handler cost analytically (bench/overheads), inject the sampling
 * interrupt into the simulation (the handler occupies the front end for
 * samplingHandlerCycles every period) and measure the actual slowdown.
 *
 * Paper claim: 1.1% performance overhead at 4 kHz (one sample per
 * 800k cycles at 3.2 GHz). Periods here are scaled to our run lengths
 * with the handler cost scaled proportionally, preserving the
 * handler/period ratios of 0.28% to 4.4%.
 */

#include <cstdio>
#include <vector>

#include "common/table.hh"
#include "core/core.hh"
#include "profilers/overhead.hh"
#include "workloads/workload.hh"

using namespace tea;

namespace {

Cycle
runWith(const std::string &name, Cycle period, Cycle handler)
{
    Workload w = workloads::byName(name);
    CoreConfig cfg;
    cfg.samplingInterruptPeriod = period;
    cfg.samplingHandlerCycles = handler;
    Core core(cfg, w.program, std::move(w.initial));
    core.run();
    return core.stats().cycles;
}

} // namespace

int
main()
{
    const char *benches[] = {"exchange2", "fotonik3d", "gcc"};
    constexpr Cycle handler = 110;
    const std::vector<Cycle> periods = {40000, 20000, 10000, 5000, 2500};

    Table t;
    std::vector<std::string> hdr{"benchmark", "baseline cycles"};
    for (Cycle p : periods) {
        hdr.push_back("1/" + std::to_string(p) + " (model " +
                      fmtPercent(samplingPerfOverhead(p, handler)) + ")");
    }
    t.header(hdr);

    for (const char *name : benches) {
        Cycle base = runWith(name, 0, handler);
        std::vector<std::string> row{name, fmtCount(base)};
        for (Cycle p : periods) {
            Cycle with = runWith(name, p, handler);
            double measured = static_cast<double>(with) /
                                  static_cast<double>(base) -
                              1.0;
            row.push_back(fmtPercent(measured));
        }
        t.row(row);
    }

    std::puts("Measured sampling overhead (injected interrupt handler, "
              "110 cycles per sample)");
    t.print();
    std::puts("Paper: 1.1% at the default rate; the handler/period ratio "
              "predicts the overhead. Measured overhead sits at or below "
              "the model because the handler's front-end bubble partly "
              "hides under back-end stalls.");
    return 0;
}
