/**
 * @file
 * Runs the checked-in example sweep (analysis/sweep): generated
 * bottleneck kernels x core-config presets, every expanded experiment
 * simulated through the replay engine with the standard technique set
 * observing, and the per-sweep PICS comparison report printed.
 *
 * TEA_SWEEP_SMOKE=1 runs the 12-experiment CI smoke sweep instead; the
 * usual runner knobs (TEA_THREADS, TEA_AUDIT, TEA_TRACE_CACHE, ...)
 * apply. TEA_SWEEP_REPORT=FILE additionally writes the report there.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "analysis/sweep.hh"

using namespace tea;

int
main()
{
    RunnerOptions opts = RunnerOptions::fromEnv();
    const char *smoke = std::getenv("TEA_SWEEP_SMOKE");
    const SweepSpec spec =
        (smoke && *smoke && *smoke != '0') ? smokeSweep() : exampleSweep();

    const auto start = std::chrono::steady_clock::now();
    SweepRunResult run = runSweep(spec, standardTechniques(), opts);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    const std::string report = renderSweepReport(run);
    std::fputs(report.c_str(), stdout);
    std::printf("[%zu experiment(s), %u thread(s), %.2f s total]\n",
                run.experiments.size(), opts.threads, seconds);

    if (const char *path = std::getenv("TEA_SWEEP_REPORT")) {
        if (std::FILE *f = std::fopen(path, "w")) {
            std::fputs(report.c_str(), f);
            std::fclose(f);
        } else {
            std::fprintf(stderr, "sweep_kernels: cannot write %s\n", path);
            return 1;
        }
    }
    return suiteExitCode(run.results);
}
