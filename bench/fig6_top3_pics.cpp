/**
 * @file
 * Figure 6: PICS for the top-3 instructions as provided by IBS, TEA and
 * the golden reference (GR) for bwaves, omnetpp, fotonik3d and
 * exchange2.
 *
 * Paper result: TEA's stacks are nearly identical to the golden
 * reference; IBS misidentifies the top instructions (not
 * time-proportional) and misattributes signatures. bwaves/omnetpp show
 * combined (cache + TLB) events; fotonik3d shows solitary cache misses;
 * exchange2 is IBS's best case yet still wrong.
 */

#include <cstdio>
#include <vector>

#include "analysis/parallel_runner.hh"
#include "analysis/report.hh"
#include "analysis/runner.hh"

using namespace tea;

int
main()
{
    std::vector<std::string> benchmarks = {"bwaves", "omnetpp",
                                           "fotonik3d", "exchange2"};
    std::vector<ExperimentResult> all =
        runBenchmarkSuite(benchmarks, {ibsConfig(), teaConfig()},
                          RunnerOptions::fromEnv());
    for (std::size_t n = 0; n < benchmarks.size(); ++n) {
        const char *name = benchmarks[n].c_str();
        ExperimentResult &res = all[n];
        const TechniqueResult &tea = res.technique("TEA");
        const TechniqueResult &ibs = res.technique("IBS");

        double total = res.golden->pics().total();
        std::printf("==== %s ====\n", name);
        std::puts("-- Golden reference (GR), top-3:");
        std::fputs(renderTopInstructions(res.program,
                                         res.golden->pics(), 3, total)
                       .c_str(),
                   stdout);
        std::puts("-- TEA, top-3 (should match GR):");
        std::fputs(
            renderTopInstructions(res.program,
                                  tea.pics.normalized(total), 3, total)
                .c_str(),
            stdout);
        std::puts("-- IBS, top-3 (front-end tagging bias):");
        std::fputs(
            renderTopInstructions(res.program,
                                  ibs.pics.normalized(total), 3, total)
                .c_str(),
            stdout);
        std::printf("   instruction-level error: TEA %.1f%%, IBS %.1f%%\n\n",
                    100.0 * res.errorOf(tea), 100.0 * res.errorOf(ibs));
    }
    return suiteExitCode(all);
}
