/**
 * @file
 * Ablation the paper mentions but cut for page restrictions (Section 5):
 * a TEA variant that tags instructions at dispatch. It carries TEA's
 * full nine-event set, so any accuracy gap versus real TEA is caused
 * purely by the loss of time-proportionality — and the paper states it
 * "yields similar accuracy to IBS, SPE, and RIS".
 */

#include <cstdio>
#include <vector>

#include "analysis/parallel_runner.hh"
#include "analysis/runner.hh"
#include "common/table.hh"

using namespace tea;

int
main()
{
    std::vector<SamplerConfig> techs = {ibsConfig(), dtagTeaConfig(),
                                        teaConfig()};
    std::vector<std::string> names = workloads::suiteNames();

    Table t;
    t.header({"benchmark", "IBS (6 events)", "DTAG-TEA (9 events)",
              "TEA (9 events)"});
    std::vector<double> sums(techs.size(), 0.0);
    std::vector<ExperimentResult> runs =
        runBenchmarkSuite(names, techs, RunnerOptions::fromEnv());
    for (std::size_t n = 0; n < names.size(); ++n) {
        const ExperimentResult &res = runs[n];
        std::vector<std::string> row{names[n]};
        for (std::size_t i = 0; i < res.techniques.size(); ++i) {
            double err = res.errorOf(res.techniques[i]);
            sums[i] += err;
            row.push_back(fmtPercent(err));
        }
        t.row(row);
    }
    t.separator();
    std::vector<std::string> avg{"average"};
    for (double s : sums)
        avg.push_back(fmtPercent(s / static_cast<double>(names.size())));
    t.row(avg);

    std::puts("Ablation: dispatch-tagged TEA (cut from the paper)");
    t.print();
    std::puts("Paper claim: tagging TEA's events at dispatch yields "
              "similar accuracy to IBS/SPE/RIS -- the attribution "
              "policy, not the event set, is what matters.");
    return suiteExitCode(runs);
}
