/**
 * @file
 * Section 3 "Overheads": TEA's storage breakdown (paper: 249 B/core),
 * the published power figures, and the sampling performance-overhead
 * model (paper: 1.1% at 4 kHz).
 */

#include <cstdio>

#include "common/table.hh"
#include "core/config.hh"
#include "events/event.hh"
#include "profilers/overhead.hh"

using namespace tea;

int
main()
{
    CoreConfig cfg;
    StorageBreakdown b = teaStorage(cfg);

    Table t;
    t.header({"component", "bits", "bytes"});
    for (const StorageItem &i : b.items) {
        t.row({i.name, std::to_string(i.bits),
               fmtDouble(static_cast<double>(i.bits) / 8.0, 1)});
    }
    t.separator();
    t.row({"total", std::to_string(b.totalBits),
           fmtDouble(b.totalBytes(), 1)});

    std::puts("TEA storage overhead per core (paper: 249 B)");
    t.print();
    std::printf("TIP baseline storage: %.0f B (paper: 57 B); "
                "TEA+TIP: %.0f B (paper: 306 B)\n",
                tipStorageBytes(), tipStorageBytes() + b.totalBytes());
    std::printf("IBS/SPE/RIS tagged-instruction storage: %u/%u/%u bits "
                "(~1 B)\n",
                ibsEventSet().size(), speEventSet().size(),
                risEventSet().size());
    std::printf("ROB+fetch-buffer share of TEA storage: %.1f%% "
                "(paper: 91.7%%)\n",
                100.0 * robFetchBufferStorageFraction(cfg));

    PowerModel pm;
    std::printf("\nPower (published figures, reproduced analytically -- "
                "see DESIGN.md):\n"
                "  ROB+fetch-buffer power increase: %.1f%%\n"
                "  absolute: %.1f mW; per-core fraction: %.2f%%\n",
                100.0 * pm.robFetchBufferIncrease, pm.absoluteMilliwatts,
                100.0 * pm.coreFraction());

    std::printf("\nSample size: %u B (paper: 88 B)\n", sampleBytes());
    std::puts("Sampling performance overhead model "
              "(handler cost / period):");
    Table p;
    p.header({"sampling frequency @3.2GHz", "period (cycles)",
              "overhead"});
    const Cycle periods[] = {3'200'000, 1'600'000, 800'000, 400'000,
                             200'000};
    const char *freqs[] = {"1 kHz", "2 kHz", "4 kHz", "8 kHz", "16 kHz"};
    for (unsigned i = 0; i < 5; ++i) {
        p.row({freqs[i], fmtCount(periods[i]),
               fmtPercent(samplingPerfOverhead(periods[i]))});
    }
    p.print();
    std::puts("Paper: 1.1% performance overhead at the default 4 kHz.");
    return 0;
}
