/**
 * @file
 * google-benchmark microbenchmarks of the simulation infrastructure
 * itself: core simulation throughput, trace-observer overhead, cache
 * and PICS primitives. These are engineering benchmarks (not paper
 * results) used to keep the harness fast enough for the sweeps.
 */

#include <benchmark/benchmark.h>

#include "analysis/runner.hh"
#include "core/cache.hh"
#include "core/core.hh"
#include "profilers/pics.hh"
#include "workloads/workload.hh"

using namespace tea;

namespace {

void
BM_CoreAluLoop(benchmark::State &state)
{
    for (auto _ : state) {
        Workload w = workloads::aluLoop(20000);
        CoreConfig cfg;
        Core core(cfg, w.program, std::move(w.initial));
        Cycle c = core.run();
        state.counters["cycles"] = static_cast<double>(c);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_CoreAluLoop)->Unit(benchmark::kMillisecond);

void
BM_CoreMemoryBound(benchmark::State &state)
{
    for (auto _ : state) {
        Workload w = workloads::streamSum(4096, 2);
        CoreConfig cfg;
        Core core(cfg, w.program, std::move(w.initial));
        Cycle c = core.run();
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_CoreMemoryBound)->Unit(benchmark::kMillisecond);

void
BM_CoreWithFullObservers(benchmark::State &state)
{
    for (auto _ : state) {
        Workload w = workloads::aluLoop(20000);
        ExperimentResult res =
            runWorkload(std::move(w), standardTechniques());
        benchmark::DoNotOptimize(res.stats.cycles);
    }
}
BENCHMARK(BM_CoreWithFullObservers)->Unit(benchmark::kMillisecond);

void
BM_CacheArrayAccess(benchmark::State &state)
{
    CacheConfig cfg{32 * 1024, 8, 16, 3};
    CacheArray cache(cfg, "bench");
    Addr a = 0;
    for (auto _ : state) {
        if (!cache.access(a))
            cache.insert(a, false);
        a = (a + 64) & 0xfffff;
    }
}
BENCHMARK(BM_CacheArrayAccess);

void
BM_PicsAddAndMask(benchmark::State &state)
{
    Pics pics;
    std::uint32_t pc = 0;
    for (auto _ : state) {
        Psv psv(static_cast<std::uint16_t>(pc & 0x1ff));
        pics.add(pc & 1023, psv, 1.0);
        ++pc;
        if ((pc & 0xffff) == 0) {
            Pics m = pics.masked(0x3f);
            benchmark::DoNotOptimize(m.total());
        }
    }
}
BENCHMARK(BM_PicsAddAndMask);

} // namespace

BENCHMARK_MAIN();
