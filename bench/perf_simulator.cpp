/**
 * @file
 * google-benchmark microbenchmarks of the simulation infrastructure
 * itself: core simulation throughput, trace-observer overhead, cache
 * and PICS primitives, and the trace-cache codec. These are engineering
 * benchmarks (not paper results) used to keep the harness fast enough
 * for the sweeps.
 *
 * After the microbenchmarks, main() measures the persistent trace cache
 * end to end — one cold run (simulate + store) and one warm run (mmap +
 * decode + replay) of the same experiment — and writes the result to
 * BENCH_trace_cache.json for CI tracking.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <dirent.h>
#include <unistd.h>

#include "analysis/parallel_runner.hh"
#include "analysis/runner.hh"
#include "common/logging.hh"
#include "core/cache.hh"
#include "core/core.hh"
#include "core/trace_buffer.hh"
#include "core/trace_codec.hh"
#include "profilers/pics.hh"
#include "workloads/workload.hh"

using namespace tea;

namespace {

void
BM_CoreAluLoop(benchmark::State &state)
{
    for (auto _ : state) {
        Workload w = workloads::aluLoop(20000);
        CoreConfig cfg;
        Core core(cfg, w.program, std::move(w.initial));
        Cycle c = core.run();
        state.counters["cycles"] = static_cast<double>(c);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_CoreAluLoop)->Unit(benchmark::kMillisecond);

void
BM_CoreMemoryBound(benchmark::State &state)
{
    for (auto _ : state) {
        Workload w = workloads::streamSum(4096, 2);
        CoreConfig cfg;
        Core core(cfg, w.program, std::move(w.initial));
        Cycle c = core.run();
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_CoreMemoryBound)->Unit(benchmark::kMillisecond);

void
BM_CoreWithFullObservers(benchmark::State &state)
{
    for (auto _ : state) {
        Workload w = workloads::aluLoop(20000);
        ExperimentResult res =
            runWorkload(std::move(w), standardTechniques());
        benchmark::DoNotOptimize(res.stats.cycles);
    }
}
BENCHMARK(BM_CoreWithFullObservers)->Unit(benchmark::kMillisecond);

void
BM_CacheArrayAccess(benchmark::State &state)
{
    CacheConfig cfg{32 * 1024, 8, 16, 3};
    CacheArray cache(cfg, "bench");
    Addr a = 0;
    for (auto _ : state) {
        if (!cache.access(a))
            cache.insert(a, false);
        a = (a + 64) & 0xfffff;
    }
}
BENCHMARK(BM_CacheArrayAccess);

void
BM_PicsAddAndMask(benchmark::State &state)
{
    Pics pics;
    std::uint32_t pc = 0;
    for (auto _ : state) {
        Psv psv(static_cast<std::uint16_t>(pc & 0x1ff));
        pics.add(pc & 1023, psv, 1.0);
        ++pc;
        if ((pc & 0xffff) == 0) {
            Pics m = pics.masked(0x3f);
            benchmark::DoNotOptimize(m.total());
        }
    }
}
BENCHMARK(BM_PicsAddAndMask);

void
BM_TraceCodecRoundTrip(benchmark::State &state)
{
    // Capture a real trace once; each iteration encodes and decodes it.
    Workload w = workloads::aluLoop(2000);
    TraceBuffer buf(4096);
    CoreConfig cfg;
    Core core(cfg, w.program, std::move(w.initial));
    core.addSink(&buf);
    core.run();
    buf.finish();

    std::uint64_t events = 0;
    std::vector<std::uint8_t> frame;
    for (auto _ : state) {
        for (const TraceChunkPtr &chunk : buf.chunks()) {
            frame.clear();
            encodeChunk(*chunk, frame);
            TraceChunk back;
            std::size_t consumed = 0;
            if (!decodeChunk(frame.data(), frame.size(), back, &consumed,
                             nullptr))
                state.SkipWithError("decode failed");
            events += back.events.size();
            benchmark::DoNotOptimize(back.cycleRecords);
        }
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceCodecRoundTrip)->Unit(benchmark::kMillisecond);

/** Remove every regular file in @p dir, then the directory itself. */
void
removeTree(const std::string &dir)
{
    if (DIR *d = ::opendir(dir.c_str())) {
        while (struct dirent *e = ::readdir(d)) {
            std::string name = e->d_name;
            if (name != "." && name != "..")
                std::remove((dir + "/" + name).c_str());
        }
        ::closedir(d);
    }
    ::rmdir(dir.c_str());
}

/**
 * End-to-end trace-cache measurement: cold run (simulate, all observers
 * attached, entry stored) vs warm run (mmap, decode, replay) of the
 * identical experiment, into BENCH_trace_cache.json.
 */
int
measureTraceCache()
{
    char tmpl[] = "/tmp/tea-cache-bench-XXXXXX";
    const char *dir = ::mkdtemp(tmpl);
    if (!dir) {
        std::fprintf(stderr, "trace-cache bench: mkdtemp failed\n");
        return 1;
    }

    // Same options for both runs (a fair comparison); serial keeps the
    // measured gap at simulate-vs-decode, which is what the cache
    // eliminates. fotonik3d is memory-bound: lots of core-model work
    // per cycle, so the cached warm run shows the win clearly.
    RunnerOptions opts;
    opts.threads = 1;
    opts.cache.enabled = true;
    opts.cache.dir = dir;

    const char *workload = "fotonik3d";
    auto run = [&]() {
        return runBenchmark(workload, standardTechniques(), opts);
    };

    ExperimentResult cold = run();
    ExperimentResult warm = run();
    removeTree(dir);

    if (cold.replay.cacheHit || !cold.replay.cacheStored ||
        !warm.replay.cacheHit) {
        std::fprintf(stderr,
                     "trace-cache bench: unexpected cache behaviour "
                     "(cold hit=%d stored=%d, warm hit=%d)\n",
                     cold.replay.cacheHit, cold.replay.cacheStored,
                     warm.replay.cacheHit);
        return 1;
    }
    if (warm.stats.cycles != cold.stats.cycles) {
        std::fprintf(stderr, "trace-cache bench: warm run diverged\n");
        return 1;
    }

    double speedup = cold.replay.totalSeconds / warm.replay.totalSeconds;
    double decode_rate =
        warm.replay.decodeSeconds > 0.0
            ? static_cast<double>(warm.replay.eventsCaptured) /
                  warm.replay.decodeSeconds
            : 0.0;

    std::printf("trace cache: cold %.3f s, warm %.3f s (%.1fx), "
                "%llu events, %.1f Mevents/s decode, %llu bytes on disk\n",
                cold.replay.totalSeconds, warm.replay.totalSeconds,
                speedup,
                static_cast<unsigned long long>(
                    warm.replay.eventsCaptured),
                decode_rate / 1e6,
                static_cast<unsigned long long>(warm.replay.cacheBytes));

    std::FILE *f = std::fopen("BENCH_trace_cache.json", "w");
    if (!f) {
        std::fprintf(stderr,
                     "trace-cache bench: cannot write "
                     "BENCH_trace_cache.json\n");
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"workload\": \"%s\",\n"
                 "  \"events\": %llu,\n"
                 "  \"cache_bytes\": %llu,\n"
                 "  \"cold_seconds\": %.6f,\n"
                 "  \"warm_seconds\": %.6f,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"decode_events_per_second\": %.0f\n"
                 "}\n",
                 workload,
                 static_cast<unsigned long long>(
                     warm.replay.eventsCaptured),
                 static_cast<unsigned long long>(warm.replay.cacheBytes),
                 cold.replay.totalSeconds, warm.replay.totalSeconds,
                 speedup, decode_rate);
    std::fclose(f);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return measureTraceCache();
}
