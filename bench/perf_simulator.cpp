/**
 * @file
 * google-benchmark microbenchmarks of the simulation infrastructure
 * itself: core simulation throughput, trace-observer overhead, cache
 * and PICS primitives, and the trace-cache codec. These are engineering
 * benchmarks (not paper results) used to keep the harness fast enough
 * for the sweeps.
 *
 * After the microbenchmarks, main() runs two end-to-end measurements:
 * the simulate phase itself (reference cycle-stepped loop vs the
 * event-driven fast path vs the cold time-parallel stitched run, into
 * BENCH_simulator.json) and the persistent trace cache (one cold
 * simulate+store run vs warm mmap+decode+replay runs, into
 * BENCH_trace_cache.json), both for CI tracking. Each measurement is
 * best-of-N with N from TEA_PERF_TRIALS (default 4).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <dirent.h>
#include <unistd.h>

#include "analysis/parallel_runner.hh"
#include "analysis/parallel_sim.hh"
#include "analysis/runner.hh"
#include "common/logging.hh"
#include "core/cache.hh"
#include "core/core.hh"
#include "core/trace_buffer.hh"
#include "core/trace_codec.hh"
#include "core/varint.hh"
#include "profilers/pics.hh"
#include "workloads/workload.hh"

using namespace tea;

namespace {

void
BM_CoreAluLoop(benchmark::State &state)
{
    for (auto _ : state) {
        Workload w = workloads::aluLoop(20000);
        CoreConfig cfg;
        Core core(cfg, w.program, std::move(w.initial));
        Cycle c = core.run();
        state.counters["cycles"] = static_cast<double>(c);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_CoreAluLoop)->Unit(benchmark::kMillisecond);

void
BM_CoreMemoryBound(benchmark::State &state)
{
    for (auto _ : state) {
        Workload w = workloads::streamSum(4096, 2);
        CoreConfig cfg;
        Core core(cfg, w.program, std::move(w.initial));
        Cycle c = core.run();
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_CoreMemoryBound)->Unit(benchmark::kMillisecond);

void
BM_CoreWithFullObservers(benchmark::State &state)
{
    for (auto _ : state) {
        Workload w = workloads::aluLoop(20000);
        ExperimentResult res =
            runWorkload(std::move(w), standardTechniques());
        benchmark::DoNotOptimize(res.stats.cycles);
    }
}
BENCHMARK(BM_CoreWithFullObservers)->Unit(benchmark::kMillisecond);

void
BM_CacheArrayAccess(benchmark::State &state)
{
    CacheConfig cfg{32 * 1024, 8, 16, 3};
    CacheArray cache(cfg, "bench");
    Addr a = 0;
    for (auto _ : state) {
        if (!cache.access(a))
            cache.insert(a, false);
        a = (a + 64) & 0xfffff;
    }
}
BENCHMARK(BM_CacheArrayAccess);

void
BM_PicsAddAndMask(benchmark::State &state)
{
    Pics pics;
    std::uint32_t pc = 0;
    for (auto _ : state) {
        Psv psv(static_cast<std::uint16_t>(pc & 0x1ff));
        pics.add(pc & 1023, psv, 1.0);
        ++pc;
        if ((pc & 0xffff) == 0) {
            Pics m = pics.masked(0x3f);
            benchmark::DoNotOptimize(m.total());
        }
    }
}
BENCHMARK(BM_PicsAddAndMask);

void
BM_VarintBulkDecode(benchmark::State &state)
{
    // A realistic mix: mostly one-byte varints with occasional wider
    // ones, like a delta-coded stream.
    std::vector<std::uint8_t> bytes;
    std::uint64_t n_values = 0;
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    for (std::size_t i = 0; i < 1 << 20; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        std::uint64_t v = (x & 0xff) < 240 ? (x & 0x7f) : (x & 0xffffff);
        while (v >= 0x80) {
            bytes.push_back(static_cast<std::uint8_t>(v) | 0x80u);
            v >>= 7;
        }
        bytes.push_back(static_cast<std::uint8_t>(v));
        ++n_values;
    }
    const auto kernel = static_cast<VarintKernel>(state.range(0));
    if (!varintKernelSupported(kernel)) {
        state.SkipWithError("kernel unsupported on this host");
        return;
    }
    const VarintKernel before = activeVarintKernel();
    setVarintKernel(kernel);
    std::vector<std::uint64_t> out(n_values);
    std::uint64_t decoded = 0;
    for (auto _ : state) {
        std::size_t count = 0;
        if (!decodeVarints(bytes.data(), bytes.size(), out.data(),
                           &count))
            state.SkipWithError("decode failed");
        decoded += count;
        benchmark::DoNotOptimize(out.data());
    }
    setVarintKernel(before);
    state.SetLabel(varintKernelName(kernel));
    state.counters["values/s"] = benchmark::Counter(
        static_cast<double>(decoded), benchmark::Counter::kIsRate);
    state.counters["bytes/s"] = benchmark::Counter(
        static_cast<double>(state.iterations() * bytes.size()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VarintBulkDecode)
    ->Arg(static_cast<int>(VarintKernel::Scalar))
    ->Arg(static_cast<int>(VarintKernel::Sse2))
    ->Arg(static_cast<int>(VarintKernel::Avx2))
    ->Unit(benchmark::kMillisecond);

void
BM_TraceChunkDecode(benchmark::State &state)
{
    // Capture a real trace once, encode it once; each iteration decodes
    // every frame through one reused decoder — the warm-replay decode
    // loop in isolation.
    Workload w = workloads::aluLoop(2000);
    TraceBuffer buf(4096);
    CoreConfig cfg;
    Core core(cfg, w.program, std::move(w.initial));
    core.addSink(&buf);
    core.run();
    buf.finish();

    std::vector<std::uint8_t> frames;
    std::vector<std::size_t> offsets;
    for (const TraceChunkPtr &chunk : buf.chunks()) {
        offsets.push_back(frames.size());
        encodeChunk(*chunk, frames);
    }

    ChunkDecoder decoder;
    TraceChunk back;
    std::uint64_t events = 0;
    for (auto _ : state) {
        for (std::size_t at : offsets) {
            std::size_t consumed = 0;
            if (!decoder.decode(frames.data() + at, frames.size() - at,
                                back, &consumed, nullptr))
                state.SkipWithError("decode failed");
            events += back.events.size();
            benchmark::DoNotOptimize(back.cycleRecords);
        }
    }
    state.SetLabel(varintKernelName(activeVarintKernel()));
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceChunkDecode)->Unit(benchmark::kMillisecond);

void
BM_TraceCodecRoundTrip(benchmark::State &state)
{
    // Capture a real trace once; each iteration encodes and decodes it.
    Workload w = workloads::aluLoop(2000);
    TraceBuffer buf(4096);
    CoreConfig cfg;
    Core core(cfg, w.program, std::move(w.initial));
    core.addSink(&buf);
    core.run();
    buf.finish();

    std::uint64_t events = 0;
    std::vector<std::uint8_t> frame;
    for (auto _ : state) {
        for (const TraceChunkPtr &chunk : buf.chunks()) {
            frame.clear();
            encodeChunk(*chunk, frame);
            TraceChunk back;
            std::size_t consumed = 0;
            if (!decodeChunk(frame.data(), frame.size(), back, &consumed,
                             nullptr))
                state.SkipWithError("decode failed");
            events += back.events.size();
            benchmark::DoNotOptimize(back.cycleRecords);
        }
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceCodecRoundTrip)->Unit(benchmark::kMillisecond);

/**
 * Best-of-N trial count for the end-to-end measurements, from
 * TEA_PERF_TRIALS (default 4, clamped to [1, 64]). Raising it tightens
 * the minimum on a noisy box at a linear cost in wall clock; CI keeps
 * the default.
 */
int
perfTrials()
{
    const char *env = std::getenv("TEA_PERF_TRIALS");
    if (!env || !*env)
        return 4;
    const long n = std::strtol(env, nullptr, 10);
    if (n < 1)
        return 1;
    if (n > 64)
        return 64;
    return static_cast<int>(n);
}

/** Remove every regular file in @p dir, then the directory itself. */
void
removeTree(const std::string &dir)
{
    if (DIR *d = ::opendir(dir.c_str())) {
        while (struct dirent *e = ::readdir(d)) {
            std::string name = e->d_name;
            if (name != "." && name != "..")
                std::remove((dir + "/" + name).c_str());
        }
        ::closedir(d);
    }
    ::rmdir(dir.c_str());
}

/**
 * Simulate-phase measurement: the reference cycle-stepped loop vs the
 * event-driven fast path (TEA_CORE_FASTPATH) on the same workload, each
 * driving a chunk-discarding ChunkingSink so only the core model plus
 * trace emission is on the clock. Both runs must agree on final cycle
 * count and event count (the bit-identical contract); the result goes to
 * BENCH_simulator.json for CI tracking.
 *
 * Two speedups are reported. The flat-scheduling work (issue-queue scan
 * bounds, bounded rings, batched emission) lives in the stage code both
 * modes share, so the in-binary reference loop is itself much faster
 * than the simulator this change replaced; the cold-path win is judged
 * against the recorded pre-fast-path baseline below, the mode-vs-mode
 * ratio only isolates what cycle skipping adds on top.
 */

/// Cold simulate-phase seconds for fotonik3d before the fast path
/// (BENCH_trace_cache.json "cold_seconds" at commit 4d039cc, the
/// baseline the fast-path work was scoped against).
constexpr double kSeedColdSeconds = 1.29;

int
measureSimulator()
{
    const char *workload = "fotonik3d";

    struct Run
    {
        Cycle cycles = 0;
        std::uint64_t events = 0;
        double seconds = 0.0;
        double skipRatio = 0.0;
    };
    auto run_once = [&](bool fast) {
        Workload w = workloads::byName(workload);
        CoreConfig cfg;
        Core core(cfg, w.program, std::move(w.initial));
        core.setFastPath(fast);
        ChunkingSink sink(4096, [](TraceChunkPtr) {});
        core.addSink(&sink);
        const auto start = std::chrono::steady_clock::now();
        Run r;
        r.cycles = core.run();
        sink.finish();
        r.seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
        r.events = sink.eventsCaptured();
        r.skipRatio = core.perf().skipRatio();
        return r;
    };

    // Best-of-N with the modes interleaved: the runs sit around half a
    // second, where load drift on a shared CI box easily costs 20%, and
    // interleaving keeps a slow stretch from landing on one mode only.
    const int trials = perfTrials();
    Run ref, fastp;
    for (int rep = 0; rep < trials; ++rep) {
        Run r = run_once(false);
        if (rep == 0 || r.seconds < ref.seconds)
            ref = r;
        Run f = run_once(true);
        if (rep == 0 || f.seconds < fastp.seconds)
            fastp = f;
    }

    if (ref.cycles != fastp.cycles || ref.events != fastp.events) {
        std::fprintf(stderr,
                     "simulator bench: fast path diverged "
                     "(ref %llu cycles / %llu events, "
                     "fast %llu cycles / %llu events)\n",
                     static_cast<unsigned long long>(ref.cycles),
                     static_cast<unsigned long long>(ref.events),
                     static_cast<unsigned long long>(fastp.cycles),
                     static_cast<unsigned long long>(fastp.events));
        return 1;
    }

    // Cold time-parallel run: checkpoint pre-pass + N workers +
    // stitcher, everything on the clock, against the same discarding
    // sink. Honest end-to-end numbers — on a single hardware core the
    // workers time-slice and the pre-pass is pure overhead, so the
    // ratio dips below 1; machine_cores in the JSON is the context that
    // makes the figure interpretable across boxes.
    const unsigned simThreads = 8;
    struct ParRun
    {
        Cycle cycles = 0;
        std::uint64_t events = 0;
        double seconds = 0.0;
        TimeParallelStats tp;
    };
    ParRun par;
    for (int rep = 0; rep < trials; ++rep) {
        Workload w = workloads::byName(workload);
        CoreConfig cfg;
        TimeParallelOptions opts;
        opts.threads = simThreads;
        opts.mode = SimParallelMode::On;
        ChunkingSink sink(4096, [](TraceChunkPtr) {});
        CoreStats st;
        SimPerf pf;
        const auto start = std::chrono::steady_clock::now();
        TimeParallelStats tp = simulateTimeParallel(
            cfg, w.program, w.initial, opts, {&sink}, &st, &pf);
        sink.finish();
        ParRun p;
        p.seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
        p.cycles = st.cycles;
        p.events = sink.eventsCaptured();
        p.tp = tp;
        if (rep == 0 || p.seconds < par.seconds)
            par = p;
    }
    if (par.cycles != fastp.cycles || par.events != fastp.events) {
        std::fprintf(stderr,
                     "simulator bench: time-parallel run diverged "
                     "(serial %llu cycles / %llu events, "
                     "parallel %llu cycles / %llu events)\n",
                     static_cast<unsigned long long>(fastp.cycles),
                     static_cast<unsigned long long>(fastp.events),
                     static_cast<unsigned long long>(par.cycles),
                     static_cast<unsigned long long>(par.events));
        return 1;
    }

    double vs_ref =
        fastp.seconds > 0.0 ? ref.seconds / fastp.seconds : 0.0;
    double vs_seed =
        fastp.seconds > 0.0 ? kSeedColdSeconds / fastp.seconds : 0.0;
    double cycles_per_s =
        fastp.seconds > 0.0
            ? static_cast<double>(fastp.cycles) / fastp.seconds
            : 0.0;
    double events_per_s =
        fastp.seconds > 0.0
            ? static_cast<double>(fastp.events) / fastp.seconds
            : 0.0;

    double par_vs_fast =
        par.seconds > 0.0 ? fastp.seconds / par.seconds : 0.0;
    double par_events_per_s =
        par.seconds > 0.0
            ? static_cast<double>(par.events) / par.seconds
            : 0.0;
    const char *kernel = varintKernelName(activeVarintKernel());
    const unsigned cores = std::thread::hardware_concurrency();

    std::printf("simulator: fast path %.3f s (%.1fx vs %.2f s seed cold, "
                "%.1fx vs %.3f s reference loop), %llu cycles, "
                "%llu events, %.1f Mcycles/s, %.1f Mevents/s, "
                "%.1f%% cycles skipped\n",
                fastp.seconds, vs_seed, kSeedColdSeconds, vs_ref,
                ref.seconds,
                static_cast<unsigned long long>(fastp.cycles),
                static_cast<unsigned long long>(fastp.events),
                cycles_per_s / 1e6, events_per_s / 1e6,
                fastp.skipRatio * 100.0);
    std::printf("simulator: time-parallel %.3f s (%.2fx vs fast path, "
                "%u sim threads on %u cores), %llu intervals, "
                "%llu retries, %.0f%% parallel efficiency\n",
                par.seconds, par_vs_fast, simThreads, cores,
                static_cast<unsigned long long>(par.tp.intervals),
                static_cast<unsigned long long>(
                    par.tp.convergenceRetries),
                par.tp.parallelEfficiency * 100.0);

    std::FILE *f = std::fopen("BENCH_simulator.json", "w");
    if (!f) {
        std::fprintf(stderr,
                     "simulator bench: cannot write "
                     "BENCH_simulator.json\n");
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"workload\": \"%s\",\n"
                 "  \"cycles\": %llu,\n"
                 "  \"events\": %llu,\n"
                 "  \"seed_cold_seconds\": %.6f,\n"
                 "  \"reference_seconds\": %.6f,\n"
                 "  \"fastpath_seconds\": %.6f,\n"
                 "  \"speedup_vs_seed\": %.3f,\n"
                 "  \"speedup_vs_reference\": %.3f,\n"
                 "  \"fastpath_cycles_per_second\": %.0f,\n"
                 "  \"fastpath_events_per_second\": %.0f,\n"
                 "  \"skip_ratio\": %.4f,\n"
                 "  \"parallel_seconds\": %.6f,\n"
                 "  \"parallel_events_per_second\": %.0f,\n"
                 "  \"parallel_speedup_vs_fastpath\": %.3f,\n"
                 "  \"sim_threads\": %u,\n"
                 "  \"parallel_intervals\": %llu,\n"
                 "  \"parallel_retries\": %llu,\n"
                 "  \"parallel_efficiency\": %.4f,\n"
                 "  \"machine_cores\": %u,\n"
                 "  \"varint_kernel\": \"%s\"\n"
                 "}\n",
                 workload, static_cast<unsigned long long>(fastp.cycles),
                 static_cast<unsigned long long>(fastp.events),
                 kSeedColdSeconds, ref.seconds, fastp.seconds, vs_seed,
                 vs_ref, cycles_per_s, events_per_s, fastp.skipRatio,
                 par.seconds, par_events_per_s, par_vs_fast, simThreads,
                 static_cast<unsigned long long>(par.tp.intervals),
                 static_cast<unsigned long long>(
                     par.tp.convergenceRetries),
                 par.tp.parallelEfficiency, cores, kernel);
    std::fclose(f);
    return 0;
}

/**
 * End-to-end trace-cache measurement: cold run (simulate, all observers
 * attached, entry stored) vs warm run (mmap, decode, replay) of the
 * identical experiment, into BENCH_trace_cache.json.
 *
 * The JSON carries two CI-gated throughputs: decode_events_per_second
 * (events over the time spent strictly inside chunk decode, the SIMD
 * codec in isolation) and warm_replay_events_per_second (events over
 * the observer-side batched replay time), plus the machine context
 * (core count, selected varint kernel) those numbers depend on.
 */
int
measureTraceCache()
{
    char tmpl[] = "/tmp/tea-cache-bench-XXXXXX";
    const char *dir = ::mkdtemp(tmpl);
    if (!dir) {
        std::fprintf(stderr, "trace-cache bench: mkdtemp failed\n");
        return 1;
    }

    // Same options for both runs (a fair comparison); serial keeps the
    // measured gap at simulate-vs-decode, which is what the cache
    // eliminates. fotonik3d is memory-bound: lots of core-model work
    // per cycle, so the cached warm run shows the win clearly.
    RunnerOptions opts;
    opts.threads = 1;
    opts.cache.enabled = true;
    opts.cache.dir = dir;

    const char *workload = "fotonik3d";
    auto run = [&]() {
        return runBenchmark(workload, standardTechniques(), opts);
    };

    ExperimentResult cold = run();
    if (cold.replay.cacheHit || !cold.replay.cacheStored) {
        removeTree(dir);
        std::fprintf(stderr,
                     "trace-cache bench: unexpected cache behaviour "
                     "(cold hit=%d stored=%d)\n",
                     cold.replay.cacheHit, cold.replay.cacheStored);
        return 1;
    }

    // Best-of-N on the warm side, per phase: like measureSimulator
    // above, these runs are short enough that load drift on a shared CI
    // box easily costs 20%, and decode and replay are disturbed
    // independently, so each phase keeps its own minimum.
    ExperimentResult warm = run();
    double decode_s = warm.replay.decodeSeconds;
    double replay_s = warm.replay.replaySeconds;
    for (int rep = 1; rep < perfTrials(); ++rep) {
        ExperimentResult w = run();
        if (!w.replay.cacheHit || w.stats.cycles != cold.stats.cycles) {
            removeTree(dir);
            std::fprintf(stderr,
                         "trace-cache bench: warm repeat %d diverged "
                         "(hit=%d)\n",
                         rep, w.replay.cacheHit);
            return 1;
        }
        if (w.replay.decodeSeconds < decode_s)
            decode_s = w.replay.decodeSeconds;
        if (w.replay.replaySeconds < replay_s)
            replay_s = w.replay.replaySeconds;
        if (w.replay.totalSeconds < warm.replay.totalSeconds)
            warm = std::move(w);
    }
    removeTree(dir);

    if (!warm.replay.cacheHit) {
        std::fprintf(stderr,
                     "trace-cache bench: warm run missed the cache\n");
        return 1;
    }
    if (warm.stats.cycles != cold.stats.cycles) {
        std::fprintf(stderr, "trace-cache bench: warm run diverged\n");
        return 1;
    }

    double speedup = cold.replay.totalSeconds / warm.replay.totalSeconds;
    const auto events =
        static_cast<double>(warm.replay.eventsCaptured);
    double decode_rate = decode_s > 0.0 ? events / decode_s : 0.0;
    double replay_rate = replay_s > 0.0 ? events / replay_s : 0.0;
    const char *kernel = varintKernelName(activeVarintKernel());
    const unsigned cores = std::thread::hardware_concurrency();

    std::printf("trace cache: cold %.3f s, warm %.3f s (%.1fx), "
                "%llu events, %.1f Mevents/s decode, "
                "%.1f Mevents/s replay, %llu bytes on disk "
                "(%s kernel, %u cores)\n",
                cold.replay.totalSeconds, warm.replay.totalSeconds,
                speedup,
                static_cast<unsigned long long>(
                    warm.replay.eventsCaptured),
                decode_rate / 1e6, replay_rate / 1e6,
                static_cast<unsigned long long>(warm.replay.cacheBytes),
                kernel, cores);

    std::FILE *f = std::fopen("BENCH_trace_cache.json", "w");
    if (!f) {
        std::fprintf(stderr,
                     "trace-cache bench: cannot write "
                     "BENCH_trace_cache.json\n");
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"workload\": \"%s\",\n"
                 "  \"events\": %llu,\n"
                 "  \"cache_bytes\": %llu,\n"
                 "  \"cold_seconds\": %.6f,\n"
                 "  \"warm_seconds\": %.6f,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"decode_events_per_second\": %.0f,\n"
                 "  \"warm_replay_events_per_second\": %.0f,\n"
                 "  \"machine_cores\": %u,\n"
                 "  \"varint_kernel\": \"%s\"\n"
                 "}\n",
                 workload,
                 static_cast<unsigned long long>(
                     warm.replay.eventsCaptured),
                 static_cast<unsigned long long>(warm.replay.cacheBytes),
                 cold.replay.totalSeconds, warm.replay.totalSeconds,
                 speedup, decode_rate, replay_rate, cores, kernel);
    std::fclose(f);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (int rc = measureSimulator())
        return rc;
    return measureTraceCache();
}
