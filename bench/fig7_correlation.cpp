/**
 * @file
 * Figure 7: correlation between per-instruction event counts and the
 * impact of those events on performance (golden cycle-stack
 * components), as a boxplot per event across the benchmark suite.
 *
 * Paper result: flush events (FL-MB, FL-EX, FL-MO) correlate strongly
 * (they cannot be hidden); cache/TLB misses correlate moderately, with
 * ST-LLC higher than ST-L1 (harder to hide); DR-SQ correlates worst
 * with the largest spread.
 */

#include <array>
#include <cstdio>
#include <vector>

#include "analysis/parallel_runner.hh"
#include "analysis/runner.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "profilers/correlation.hh"

using namespace tea;

int
main()
{
    std::array<std::vector<double>, numEvents> rs;
    std::vector<ExperimentResult> runs = runBenchmarkSuite(
        workloads::suiteNames(), {}, RunnerOptions::fromEnv());
    for (const ExperimentResult &res : runs) {
        auto corr = eventImpactCorrelation(*res.golden);
        for (unsigned e = 0; e < numEvents; ++e) {
            if (corr[e].valid)
                rs[e].push_back(corr[e].r);
        }
    }

    Table t;
    t.header({"event", "n", "min", "q1", "median", "q3", "max",
              "|min..q1..median..q3..max| in [-1,1]"});
    for (unsigned e = 0; e < numEvents; ++e) {
        auto ev = static_cast<Event>(e);
        if (rs[e].empty()) {
            t.row({eventName(ev), "0", "-", "-", "-", "-", "-", ""});
            continue;
        }
        BoxplotSummary s = boxplot(rs[e]);
        // Render the box on a [-1, 1] axis, 40 chars wide.
        std::string axis(41, ' ');
        auto pos = [](double v) {
            int p = static_cast<int>((v + 1.0) / 2.0 * 40.0 + 0.5);
            return std::clamp(p, 0, 40);
        };
        for (int i = pos(s.q1); i <= pos(s.q3); ++i)
            axis[static_cast<std::size_t>(i)] = '=';
        axis[static_cast<std::size_t>(pos(s.min))] = '|';
        axis[static_cast<std::size_t>(pos(s.max))] = '|';
        axis[static_cast<std::size_t>(pos(s.median))] = 'O';
        t.row({eventName(ev), std::to_string(s.n), fmtDouble(s.min),
               fmtDouble(s.q1), fmtDouble(s.median), fmtDouble(s.q3),
               fmtDouble(s.max), axis});
    }

    std::puts("Figure 7: Pearson correlation between event count and "
              "performance impact (per static instruction, across "
              "benchmarks)");
    t.print();
    std::puts("Paper: FL-* events correlate strongly; TLB/cache misses "
              "moderately (ST-LLC > ST-L1); DR-SQ least with the largest "
              "spread.");
    return suiteExitCode(runs);
}
