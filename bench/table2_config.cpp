/**
 * @file
 * Table 2: the baseline architecture configuration of the simulated
 * BOOM-class core.
 */

#include <cstdio>

#include "core/config.hh"

using namespace tea;

int
main()
{
    CoreConfig cfg;
    std::puts("Table 2: Baseline architecture configuration.");
    std::fputs(cfg.describe().c_str(), stdout);
    std::puts("");
    std::puts("Differences from the paper's FireSim/BOOM baseline "
              "(see DESIGN.md):");
    std::puts(" - TAGE-lite (~24 KB) models the 28 KB TAGE;");
    std::puts(" - 40/24 load/store queue split models the 64-entry LSQ;");
    std::puts(" - execution latencies are conventional values (the RTL's "
              "exact latencies are not published).");
    return 0;
}
