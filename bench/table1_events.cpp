/**
 * @file
 * Table 1: the performance events of TEA, IBS, SPE and RIS.
 *
 * The per-scheme sets are best-effort reconstructions sized to the bit
 * widths the paper states (TEA 9, IBS 6, SPE 5, RIS 7); see DESIGN.md.
 */

#include <cstdio>

#include "common/table.hh"
#include "events/event.hh"

using namespace tea;

int
main()
{
    auto sets = table1EventSets();

    Table t;
    t.header({"Event", "Description", "TEA", "IBS", "SPE", "RIS"});
    for (unsigned i = 0; i < numEvents; ++i) {
        auto e = static_cast<Event>(i);
        std::vector<std::string> row{eventName(e), eventDescription(e)};
        for (const EventSet *s : sets)
            row.push_back(s->contains(e) ? "x" : "");
        t.row(row);
    }

    std::puts("Table 1: The performance events of TEA, IBS, SPE, and RIS.");
    t.print();

    Table bits;
    bits.header({"Scheme", "PSV bits", "Tagging"});
    bits.row({"TEA", std::to_string(teaEventSet().size()),
              "all in-flight instructions (commit-time sampling)"});
    bits.row({"IBS", std::to_string(ibsEventSet().size()),
              "one tagged instruction at dispatch"});
    bits.row({"SPE", std::to_string(speEventSet().size()),
              "one tagged instruction at dispatch"});
    bits.row({"RIS", std::to_string(risEventSet().size()),
              "one tagged instruction at fetch"});
    bits.print();
    std::puts("Paper: TEA tracks 9 events; IBS/SPE/RIS store 6/5/7 bits "
              "for a single tagged instruction.");
    return 0;
}
