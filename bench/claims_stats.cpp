/**
 * @file
 * Quantified claims from Sections 2/3/5:
 *  - 30.0% of dynamic instruction executions that encounter at least one
 *    event encounter combined events;
 *  - 99% of the commit stalls of instructions that TEA assigns no event
 *    to are shorter than 5.8 clock cycles (event coverage);
 *  - the golden reference attributes (almost) every cycle.
 */

#include <cstdio>

#include "analysis/parallel_runner.hh"
#include "analysis/runner.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace tea;

int
main()
{
    std::uint64_t with_events = 0;
    std::uint64_t with_combined = 0;
    std::vector<double> p99s;

    Table t;
    t.header({"benchmark", "event uops", "combined share",
              "event-free stall p99 (cycles)", "golden coverage"});

    std::vector<std::string> names = workloads::suiteNames();
    std::vector<ExperimentResult> runs =
        runBenchmarkSuite(names, {}, RunnerOptions::fromEnv());
    for (std::size_t n = 0; n < names.size(); ++n) {
        const std::string &name = names[n];
        const ExperimentResult &res = runs[n];
        with_events += res.stats.uopsWithEvents;
        with_combined += res.stats.uopsWithCombined;

        // Stall-length distribution of instructions with an empty PSV.
        std::uint64_t p99 = 0;
        auto it = res.golden->stallHistograms().find(0);
        if (it != res.golden->stallHistograms().end())
            p99 = it->second.quantile(0.99);
        p99s.push_back(static_cast<double>(p99));

        double coverage = res.golden->pics().total() /
                          static_cast<double>(res.stats.cycles);
        t.row({name, fmtCount(res.stats.uopsWithEvents),
               res.stats.uopsWithEvents
                   ? fmtPercent(static_cast<double>(
                                    res.stats.uopsWithCombined) /
                                static_cast<double>(
                                    res.stats.uopsWithEvents))
                   : "-",
               std::to_string(p99), fmtPercent(coverage)});
    }

    std::puts("Quantified paper claims (Sections 2, 3 and 5)");
    t.print();
    std::printf("combined-event share across the suite: %.1f%% "
                "(paper: 30.0%%)\n",
                100.0 * static_cast<double>(with_combined) /
                    static_cast<double>(with_events));
    std::printf("event-free stall p99, suite mean: %.1f cycles "
                "(paper: 99%% of such stalls < 5.8 cycles)\n",
                mean(p99s));
    return suiteExitCode(runs);
}
