/**
 * @file
 * Related-work comparison (§7): application-level CPI stacks (Eyerman
 * et al.) and the top-down method (Yasin) computed from the same golden
 * trace as TEA's PICS. Both correctly summarize *what* the machine
 * spends time on, but neither can produce per-instruction stacks — the
 * paper's case studies show why that matters (lbm's 11 loads all count
 * billions of misses; only PICS says which one is performance-critical).
 */

#include <cstdio>

#include "analysis/cpi_stack.hh"
#include "analysis/parallel_runner.hh"
#include "analysis/runner.hh"
#include "common/table.hh"

using namespace tea;

int
main()
{
    Table t;
    t.header({"benchmark", "CPI", "top-down verdict",
              "instructions holding 80% of time"});
    RunnerOptions opts = RunnerOptions::fromEnv();
    std::vector<std::string> names = workloads::suiteNames();
    std::vector<ExperimentResult> runs =
        runBenchmarkSuite(names, {}, opts);
    for (std::size_t n = 0; n < names.size(); ++n) {
        const std::string &name = names[n];
        const ExperimentResult &res = runs[n];
        CpiStack cpi = cpiStackFrom(*res.golden, res.stats);
        TopDown td = topDownFrom(res.stats);

        // How concentrated is the time? (What CPI stacks cannot see.)
        auto units = res.golden->pics().topUnits(10000);
        double acc = 0.0;
        unsigned needed = 0;
        for (std::uint32_t u : units) {
            acc += res.golden->pics().unitCycles(u);
            ++needed;
            if (acc >= 0.8 * res.golden->pics().total())
                break;
        }
        t.row({name, fmtDouble(cpi.total(), 2), td.dominant(),
               std::to_string(needed) + " of " +
                   std::to_string(units.size())});
    }
    std::puts("Related work: what application-level analysis sees");
    t.print();

    std::puts("\nlbm in detail -- the CPI stack knows the time goes to "
              "LLC misses but not to which instruction:");
    ExperimentResult lbm = runBenchmark("lbm", {}, opts);
    CpiStack cpi = cpiStackFrom(*lbm.golden, lbm.stats);
    std::fputs(cpi.render().c_str(), stdout);
    std::printf("top-down: %s\n",
                topDownFrom(lbm.stats).render().c_str());
    std::puts("PICS (Fig 10) additionally pinpoints the single critical "
              "fld carrying 62% of execution time.");
    return suiteExitCode(runs);
}
