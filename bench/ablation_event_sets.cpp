/**
 * @file
 * Ablation separating the two error sources of IBS/SPE/RIS: the smaller
 * event vocabulary versus the front-end tagging policy. TEA restricted
 * to each scheme's event set but scored against the FULL nine-event
 * golden reference isolates the vocabulary cost; the gap to the real
 * scheme's error is the attribution (time-proportionality) cost.
 *
 * Paper (§5.1): the IBS/SPE/RIS differences among themselves are
 * marginal (event sets); their distance to TEA is the tagging policy.
 */

#include <cstdio>
#include <vector>

#include "analysis/parallel_runner.hh"
#include "analysis/runner.hh"
#include "common/table.hh"

using namespace tea;

int
main()
{
    // TEA-policy samplers restricted to each scheme's vocabulary.
    SamplerConfig tea_ibs = teaConfig();
    tea_ibs.name = "TEA@IBS-events";
    tea_ibs.eventMask = ibsEventSet().mask;
    SamplerConfig tea_spe = teaConfig();
    tea_spe.name = "TEA@SPE-events";
    tea_spe.eventMask = speEventSet().mask;
    std::vector<SamplerConfig> techs = {ibsConfig(), tea_ibs, tea_spe,
                                        teaConfig()};

    std::vector<std::string> names = workloads::suiteNames();
    std::vector<double> vocab_err(techs.size(), 0.0); // vs FULL golden
    double ibs_err = 0.0;

    std::vector<ExperimentResult> runs =
        runBenchmarkSuite(names, techs, RunnerOptions::fromEnv());
    for (const ExperimentResult &res : runs) {
        Pics full_golden = res.golden->pics(); // 9-event reference
        for (std::size_t i = 0; i < techs.size(); ++i) {
            vocab_err[i] +=
                res.techniques[i].pics.errorAgainst(full_golden);
        }
        ibs_err += res.errorOf(res.technique("IBS")); // masked golden
    }

    auto n = static_cast<double>(names.size());
    Table t;
    t.header({"configuration", "avg error vs FULL 9-event golden"});
    for (std::size_t i = 0; i < techs.size(); ++i)
        t.row({techs[i].name, fmtPercent(vocab_err[i] / n)});
    std::puts("Ablation: event-set vocabulary vs attribution policy");
    t.print();
    std::printf("IBS error vs its own masked golden (Fig 5 metric): "
                "%s\n",
                fmtPercent(ibs_err / n).c_str());
    std::puts("Reading: restricting TEA to IBS's/SPE's smaller event "
              "sets costs only a few percent against the full-detail "
              "golden; the front-end taggers' tens-of-percent error is "
              "almost entirely the attribution policy. This is the "
              "paper's central argument quantified.");
    return suiteExitCode(runs);
}
