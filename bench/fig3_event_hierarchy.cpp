/**
 * @file
 * Figure 3 / event-selection ablation: performance events form
 * hierarchies, and TEA trades interpretability against overhead by
 * choosing how many events the PSV tracks. This bench quantifies the
 * trade-off: for growing event sets (roots of each dependence chain
 * first, dependent events later), it reports how many of the cycles the
 * golden reference attributes to event-carrying instructions remain
 * explained, and the p99 stall length of instructions the set leaves
 * unexplained (the paper's coverage criterion: with all nine events,
 * 99% of unexplained stalls are < 5.8 cycles).
 */

#include <cstdio>
#include <vector>

#include "analysis/parallel_runner.hh"
#include "analysis/runner.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace tea;

int
main()
{
    // Hierarchy-respecting order: commit-state roots first, dependent
    // and specialized events later (Section 3).
    const Event order[] = {Event::StL1,  Event::StTlb, Event::DrL1,
                           Event::DrTlb, Event::FlMb,  Event::StLlc,
                           Event::FlEx,  Event::FlMo,  Event::DrSq};

    std::vector<std::string> names = workloads::suiteNames();
    std::vector<ExperimentResult> runs = runBenchmarkSuite(
        names, {}, RunnerOptions::fromEnv());

    Table t;
    t.header({"PSV bits", "event set adds", "explained event cycles",
              "unexplained-stall p99 (cycles)"});

    std::uint16_t mask = 0;
    for (unsigned k = 0; k <= numEvents; ++k) {
        std::string added = k == 0 ? "(none)" : eventName(order[k - 1]);
        if (k > 0)
            mask |= static_cast<std::uint16_t>(
                1u << static_cast<unsigned>(order[k - 1]));

        double event_cycles = 0.0;
        double explained = 0.0;
        // Merge unexplained-stall histograms across the suite.
        Histogram unexplained(512);
        for (const ExperimentResult &res : runs) {
            for (const PicsComponent &c :
                 res.golden->pics().components()) {
                if (c.signature == 0)
                    continue;
                event_cycles += c.cycles;
                if (c.signature & mask)
                    explained += c.cycles;
            }
            for (const auto &[sig, hist] :
                 res.golden->stallHistograms()) {
                if ((sig & mask) != 0)
                    continue; // explained under this set
                const auto &bins = hist.bins();
                for (std::size_t v = 0; v < bins.size(); ++v) {
                    if (bins[v])
                        unexplained.add(static_cast<std::uint64_t>(v),
                                        bins[v]);
                }
            }
        }
        t.row({std::to_string(k), added,
               event_cycles > 0.0 ? fmtPercent(explained / event_cycles)
                                  : "-",
               std::to_string(unexplained.quantile(0.99))});
    }

    std::puts("Figure 3 (quantified): event-set size vs interpretability");
    t.print();
    std::puts("Paper: nine events suffice -- 99% of the stalls of "
              "instructions with no event are shorter than 5.8 cycles.");
    return suiteExitCode(runs);
}
