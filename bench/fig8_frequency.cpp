/**
 * @file
 * Figure 8: error versus sampling frequency.
 *
 * All periods are evaluated in a single simulation per benchmark (every
 * sampler observes the same trace). The paper samples 4 kHz on a
 * 3.2 GHz core (one sample per 800k cycles over billions of cycles); we
 * scale periods to our shorter runs so the samples-per-run magnitudes
 * are comparable (see DESIGN.md).
 *
 * Paper result: accuracy is insensitive to sampling frequency above
 * 4 kHz; IBS/SPE/RIS stay inaccurate at every frequency because their
 * error is bias, not variance.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "analysis/parallel_runner.hh"
#include "analysis/runner.hh"
#include "common/table.hh"

using namespace tea;

int
main()
{
    const std::vector<Cycle> periods = {4096, 1024, 509, 251, 127, 61, 31};
    const char *tech_names[] = {"IBS", "SPE", "RIS", "NCI-TEA", "TEA"};

    // error[period][tech] summed across benchmarks.
    std::map<Cycle, std::vector<double>> err;
    for (Cycle p : periods)
        err[p] = std::vector<double>(5, 0.0);

    // 35 samplers per benchmark observe one simulation; up to
    // TEA_THREADS benchmarks run concurrently (default: all hardware
    // threads), the period sweep being exactly the single-run fan-out
    // the out-of-band replay methodology buys.
    RunnerOptions opts = RunnerOptions::fromEnv();

    std::vector<SamplerConfig> techs;
    for (Cycle p : periods) {
        for (SamplerConfig c : standardTechniques(p)) {
            c.name += '@';
            c.name += std::to_string(p);
            techs.push_back(c);
        }
    }

    std::vector<std::string> names = workloads::suiteNames();
    std::vector<ExperimentResult> all =
        runBenchmarkSuite(names, techs, opts);
    for (const ExperimentResult &res : all) {
        std::size_t idx = 0;
        for (Cycle p : periods) {
            for (unsigned t = 0; t < 5; ++t, ++idx)
                err[p][t] += res.errorOf(res.techniques[idx]);
        }
    }

    Table t;
    t.header({"period (cycles)", "IBS", "SPE", "RIS", "NCI-TEA", "TEA"});
    for (Cycle p : periods) {
        std::vector<std::string> row{std::to_string(p)};
        for (unsigned tch = 0; tch < 5; ++tch) {
            row.push_back(fmtPercent(
                err[p][tch] / static_cast<double>(names.size())));
        }
        t.row(row);
    }

    std::puts("Figure 8: average error vs sampling frequency "
              "(smaller period = higher frequency)");
    t.print();
    (void)tech_names;
    std::puts("Paper: error is insensitive to frequency above 4 kHz; the "
              "front-end taggers' error is bias-dominated and does not "
              "improve with frequency.");
    return suiteExitCode(all);
}
