/**
 * @file
 * Ablation of a DESIGN.md choice: the L1D next-line prefetcher (Table 2
 * lists one; ours fills from the LLC only). Quantifies its effect per
 * benchmark and confirms it does not change the accuracy story.
 */

#include <cstdio>
#include <vector>

#include "analysis/parallel_runner.hh"
#include "analysis/runner.hh"
#include "common/table.hh"

using namespace tea;

int
main()
{
    Table t;
    t.header({"benchmark", "cycles (pf on)", "cycles (pf off)",
              "prefetcher speedup", "TEA err on", "TEA err off"});

    // Two suite sweeps, one per configuration; the trace cache (when
    // enabled) keys entries on the full config, so the two sweeps keep
    // distinct cache entries.
    RunnerOptions opts = RunnerOptions::fromEnv();
    CoreConfig on;
    CoreConfig off;
    off.nextLinePrefetcher = false;
    std::vector<std::string> names = workloads::suiteNames();
    std::vector<ExperimentResult> runs_on =
        runBenchmarkSuite(names, {teaConfig()}, opts, on);
    std::vector<ExperimentResult> runs_off =
        runBenchmarkSuite(names, {teaConfig()}, opts, off);

    for (std::size_t n = 0; n < names.size(); ++n) {
        const ExperimentResult &with = runs_on[n];
        const ExperimentResult &without = runs_off[n];
        double speedup = static_cast<double>(without.stats.cycles) /
                         static_cast<double>(with.stats.cycles);
        t.row({names[n], fmtCount(with.stats.cycles),
               fmtCount(without.stats.cycles),
               fmtDouble(speedup) + "x",
               fmtPercent(with.errorOf(with.technique("TEA"))),
               fmtPercent(without.errorOf(without.technique("TEA")))});
    }

    std::puts("Ablation: L1D next-line prefetcher (LLC-to-L1)");
    t.print();
    std::puts("TEA's accuracy is insensitive to the prefetcher: the "
              "attribution policy does not depend on which misses the "
              "hardware happens to hide.");
    return suiteExitCode(runs_on) | suiteExitCode(runs_off);
}
