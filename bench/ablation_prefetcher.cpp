/**
 * @file
 * Ablation of a DESIGN.md choice: the L1D next-line prefetcher (Table 2
 * lists one; ours fills from the LLC only). Quantifies its effect per
 * benchmark and confirms it does not change the accuracy story.
 */

#include <cstdio>

#include "analysis/runner.hh"
#include "common/table.hh"

using namespace tea;

int
main()
{
    Table t;
    t.header({"benchmark", "cycles (pf on)", "cycles (pf off)",
              "prefetcher speedup", "TEA err on", "TEA err off"});

    for (const std::string &name : workloads::suiteNames()) {
        CoreConfig on;
        CoreConfig off;
        off.nextLinePrefetcher = false;
        ExperimentResult with = runBenchmark(name, {teaConfig()}, on);
        ExperimentResult without = runBenchmark(name, {teaConfig()},
                                                off);
        double speedup = static_cast<double>(without.stats.cycles) /
                         static_cast<double>(with.stats.cycles);
        t.row({name, fmtCount(with.stats.cycles),
               fmtCount(without.stats.cycles),
               fmtDouble(speedup) + "x",
               fmtPercent(with.errorOf(with.technique("TEA"))),
               fmtPercent(without.errorOf(without.technique("TEA")))});
    }

    std::puts("Ablation: L1D next-line prefetcher (LLC-to-L1)");
    t.print();
    std::puts("TEA's accuracy is insensitive to the prefetcher: the "
              "attribution policy does not depend on which misses the "
              "hardware happens to hide.");
    return 0;
}
