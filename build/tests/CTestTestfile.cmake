# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_rng_table[1]_include.cmake")
include("/root/repo/build/tests/test_events[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_cache_tlb[1]_include.cmake")
include("/root/repo/build/tests/test_memory_system[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_pics[1]_include.cmake")
include("/root/repo/build/tests/test_profilers[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_multicore[1]_include.cmake")
include("/root/repo/build/tests/test_sample_record[1]_include.cmake")
include("/root/repo/build/tests/test_trace_io[1]_include.cmake")
include("/root/repo/build/tests/test_core_timing[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_cpi_stack[1]_include.cmake")
include("/root/repo/build/tests/test_workloads2[1]_include.cmake")
include("/root/repo/build/tests/test_uncore_system2[1]_include.cmake")
