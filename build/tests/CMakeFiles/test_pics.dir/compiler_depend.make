# Empty compiler generated dependencies file for test_pics.
# This may be replaced when dependencies are built.
