file(REMOVE_RECURSE
  "CMakeFiles/test_pics.dir/test_pics.cc.o"
  "CMakeFiles/test_pics.dir/test_pics.cc.o.d"
  "test_pics"
  "test_pics.pdb"
  "test_pics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
