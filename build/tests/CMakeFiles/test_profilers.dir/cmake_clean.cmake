file(REMOVE_RECURSE
  "CMakeFiles/test_profilers.dir/test_profilers.cc.o"
  "CMakeFiles/test_profilers.dir/test_profilers.cc.o.d"
  "test_profilers"
  "test_profilers.pdb"
  "test_profilers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profilers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
