# Empty dependencies file for test_cpi_stack.
# This may be replaced when dependencies are built.
