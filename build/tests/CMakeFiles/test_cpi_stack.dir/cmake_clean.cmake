file(REMOVE_RECURSE
  "CMakeFiles/test_cpi_stack.dir/test_cpi_stack.cc.o"
  "CMakeFiles/test_cpi_stack.dir/test_cpi_stack.cc.o.d"
  "test_cpi_stack"
  "test_cpi_stack.pdb"
  "test_cpi_stack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpi_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
