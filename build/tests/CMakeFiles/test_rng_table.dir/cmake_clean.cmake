file(REMOVE_RECURSE
  "CMakeFiles/test_rng_table.dir/test_rng_table.cc.o"
  "CMakeFiles/test_rng_table.dir/test_rng_table.cc.o.d"
  "test_rng_table"
  "test_rng_table.pdb"
  "test_rng_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rng_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
