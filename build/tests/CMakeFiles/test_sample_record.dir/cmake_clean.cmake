file(REMOVE_RECURSE
  "CMakeFiles/test_sample_record.dir/test_sample_record.cc.o"
  "CMakeFiles/test_sample_record.dir/test_sample_record.cc.o.d"
  "test_sample_record"
  "test_sample_record.pdb"
  "test_sample_record[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sample_record.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
