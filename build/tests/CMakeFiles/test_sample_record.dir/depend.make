# Empty dependencies file for test_sample_record.
# This may be replaced when dependencies are built.
