# Empty compiler generated dependencies file for test_uncore_system2.
# This may be replaced when dependencies are built.
