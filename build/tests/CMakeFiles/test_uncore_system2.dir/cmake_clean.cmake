file(REMOVE_RECURSE
  "CMakeFiles/test_uncore_system2.dir/test_uncore_system2.cc.o"
  "CMakeFiles/test_uncore_system2.dir/test_uncore_system2.cc.o.d"
  "test_uncore_system2"
  "test_uncore_system2.pdb"
  "test_uncore_system2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uncore_system2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
