# Empty dependencies file for test_workloads2.
# This may be replaced when dependencies are built.
