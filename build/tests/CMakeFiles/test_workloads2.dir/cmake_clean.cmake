file(REMOVE_RECURSE
  "CMakeFiles/test_workloads2.dir/test_workloads2.cc.o"
  "CMakeFiles/test_workloads2.dir/test_workloads2.cc.o.d"
  "test_workloads2"
  "test_workloads2.pdb"
  "test_workloads2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
