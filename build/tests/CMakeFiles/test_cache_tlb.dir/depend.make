# Empty dependencies file for test_cache_tlb.
# This may be replaced when dependencies are built.
