file(REMOVE_RECURSE
  "CMakeFiles/test_cache_tlb.dir/test_cache_tlb.cc.o"
  "CMakeFiles/test_cache_tlb.dir/test_cache_tlb.cc.o.d"
  "test_cache_tlb"
  "test_cache_tlb.pdb"
  "test_cache_tlb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
