file(REMOVE_RECURSE
  "libtea_common.a"
)
