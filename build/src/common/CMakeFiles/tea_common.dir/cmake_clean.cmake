file(REMOVE_RECURSE
  "CMakeFiles/tea_common.dir/logging.cc.o"
  "CMakeFiles/tea_common.dir/logging.cc.o.d"
  "CMakeFiles/tea_common.dir/rng.cc.o"
  "CMakeFiles/tea_common.dir/rng.cc.o.d"
  "CMakeFiles/tea_common.dir/stats.cc.o"
  "CMakeFiles/tea_common.dir/stats.cc.o.d"
  "CMakeFiles/tea_common.dir/table.cc.o"
  "CMakeFiles/tea_common.dir/table.cc.o.d"
  "libtea_common.a"
  "libtea_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tea_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
