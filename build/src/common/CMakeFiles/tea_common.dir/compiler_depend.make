# Empty compiler generated dependencies file for tea_common.
# This may be replaced when dependencies are built.
