file(REMOVE_RECURSE
  "CMakeFiles/tea_isa.dir/builder.cc.o"
  "CMakeFiles/tea_isa.dir/builder.cc.o.d"
  "CMakeFiles/tea_isa.dir/disasm.cc.o"
  "CMakeFiles/tea_isa.dir/disasm.cc.o.d"
  "CMakeFiles/tea_isa.dir/executor.cc.o"
  "CMakeFiles/tea_isa.dir/executor.cc.o.d"
  "CMakeFiles/tea_isa.dir/memory.cc.o"
  "CMakeFiles/tea_isa.dir/memory.cc.o.d"
  "CMakeFiles/tea_isa.dir/opcode.cc.o"
  "CMakeFiles/tea_isa.dir/opcode.cc.o.d"
  "CMakeFiles/tea_isa.dir/program.cc.o"
  "CMakeFiles/tea_isa.dir/program.cc.o.d"
  "libtea_isa.a"
  "libtea_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tea_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
