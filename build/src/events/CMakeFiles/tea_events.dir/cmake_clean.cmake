file(REMOVE_RECURSE
  "CMakeFiles/tea_events.dir/event.cc.o"
  "CMakeFiles/tea_events.dir/event.cc.o.d"
  "libtea_events.a"
  "libtea_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tea_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
