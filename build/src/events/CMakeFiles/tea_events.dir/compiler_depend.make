# Empty compiler generated dependencies file for tea_events.
# This may be replaced when dependencies are built.
