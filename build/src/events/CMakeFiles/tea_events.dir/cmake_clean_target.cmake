file(REMOVE_RECURSE
  "libtea_events.a"
)
