file(REMOVE_RECURSE
  "libtea_profilers.a"
)
