
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profilers/correlation.cc" "src/profilers/CMakeFiles/tea_profilers.dir/correlation.cc.o" "gcc" "src/profilers/CMakeFiles/tea_profilers.dir/correlation.cc.o.d"
  "/root/repo/src/profilers/golden.cc" "src/profilers/CMakeFiles/tea_profilers.dir/golden.cc.o" "gcc" "src/profilers/CMakeFiles/tea_profilers.dir/golden.cc.o.d"
  "/root/repo/src/profilers/overhead.cc" "src/profilers/CMakeFiles/tea_profilers.dir/overhead.cc.o" "gcc" "src/profilers/CMakeFiles/tea_profilers.dir/overhead.cc.o.d"
  "/root/repo/src/profilers/pics.cc" "src/profilers/CMakeFiles/tea_profilers.dir/pics.cc.o" "gcc" "src/profilers/CMakeFiles/tea_profilers.dir/pics.cc.o.d"
  "/root/repo/src/profilers/sample_record.cc" "src/profilers/CMakeFiles/tea_profilers.dir/sample_record.cc.o" "gcc" "src/profilers/CMakeFiles/tea_profilers.dir/sample_record.cc.o.d"
  "/root/repo/src/profilers/sampler.cc" "src/profilers/CMakeFiles/tea_profilers.dir/sampler.cc.o" "gcc" "src/profilers/CMakeFiles/tea_profilers.dir/sampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tea_core.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/tea_events.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tea_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/tea_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
