file(REMOVE_RECURSE
  "CMakeFiles/tea_profilers.dir/correlation.cc.o"
  "CMakeFiles/tea_profilers.dir/correlation.cc.o.d"
  "CMakeFiles/tea_profilers.dir/golden.cc.o"
  "CMakeFiles/tea_profilers.dir/golden.cc.o.d"
  "CMakeFiles/tea_profilers.dir/overhead.cc.o"
  "CMakeFiles/tea_profilers.dir/overhead.cc.o.d"
  "CMakeFiles/tea_profilers.dir/pics.cc.o"
  "CMakeFiles/tea_profilers.dir/pics.cc.o.d"
  "CMakeFiles/tea_profilers.dir/sample_record.cc.o"
  "CMakeFiles/tea_profilers.dir/sample_record.cc.o.d"
  "CMakeFiles/tea_profilers.dir/sampler.cc.o"
  "CMakeFiles/tea_profilers.dir/sampler.cc.o.d"
  "libtea_profilers.a"
  "libtea_profilers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tea_profilers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
