# Empty compiler generated dependencies file for tea_profilers.
# This may be replaced when dependencies are built.
