file(REMOVE_RECURSE
  "CMakeFiles/tea_analysis.dir/cpi_stack.cc.o"
  "CMakeFiles/tea_analysis.dir/cpi_stack.cc.o.d"
  "CMakeFiles/tea_analysis.dir/report.cc.o"
  "CMakeFiles/tea_analysis.dir/report.cc.o.d"
  "CMakeFiles/tea_analysis.dir/runner.cc.o"
  "CMakeFiles/tea_analysis.dir/runner.cc.o.d"
  "libtea_analysis.a"
  "libtea_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tea_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
