file(REMOVE_RECURSE
  "libtea_analysis.a"
)
