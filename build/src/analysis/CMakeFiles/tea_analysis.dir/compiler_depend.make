# Empty compiler generated dependencies file for tea_analysis.
# This may be replaced when dependencies are built.
