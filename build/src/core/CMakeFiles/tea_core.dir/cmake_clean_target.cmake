file(REMOVE_RECURSE
  "libtea_core.a"
)
