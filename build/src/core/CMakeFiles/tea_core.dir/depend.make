# Empty dependencies file for tea_core.
# This may be replaced when dependencies are built.
