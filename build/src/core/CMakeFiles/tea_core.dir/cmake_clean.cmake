file(REMOVE_RECURSE
  "CMakeFiles/tea_core.dir/branch_predictor.cc.o"
  "CMakeFiles/tea_core.dir/branch_predictor.cc.o.d"
  "CMakeFiles/tea_core.dir/cache.cc.o"
  "CMakeFiles/tea_core.dir/cache.cc.o.d"
  "CMakeFiles/tea_core.dir/config.cc.o"
  "CMakeFiles/tea_core.dir/config.cc.o.d"
  "CMakeFiles/tea_core.dir/core.cc.o"
  "CMakeFiles/tea_core.dir/core.cc.o.d"
  "CMakeFiles/tea_core.dir/memory_system.cc.o"
  "CMakeFiles/tea_core.dir/memory_system.cc.o.d"
  "CMakeFiles/tea_core.dir/system.cc.o"
  "CMakeFiles/tea_core.dir/system.cc.o.d"
  "CMakeFiles/tea_core.dir/tlb.cc.o"
  "CMakeFiles/tea_core.dir/tlb.cc.o.d"
  "CMakeFiles/tea_core.dir/trace_io.cc.o"
  "CMakeFiles/tea_core.dir/trace_io.cc.o.d"
  "CMakeFiles/tea_core.dir/uncore.cc.o"
  "CMakeFiles/tea_core.dir/uncore.cc.o.d"
  "libtea_core.a"
  "libtea_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tea_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
