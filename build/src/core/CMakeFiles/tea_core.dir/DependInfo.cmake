
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/branch_predictor.cc" "src/core/CMakeFiles/tea_core.dir/branch_predictor.cc.o" "gcc" "src/core/CMakeFiles/tea_core.dir/branch_predictor.cc.o.d"
  "/root/repo/src/core/cache.cc" "src/core/CMakeFiles/tea_core.dir/cache.cc.o" "gcc" "src/core/CMakeFiles/tea_core.dir/cache.cc.o.d"
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/tea_core.dir/config.cc.o" "gcc" "src/core/CMakeFiles/tea_core.dir/config.cc.o.d"
  "/root/repo/src/core/core.cc" "src/core/CMakeFiles/tea_core.dir/core.cc.o" "gcc" "src/core/CMakeFiles/tea_core.dir/core.cc.o.d"
  "/root/repo/src/core/memory_system.cc" "src/core/CMakeFiles/tea_core.dir/memory_system.cc.o" "gcc" "src/core/CMakeFiles/tea_core.dir/memory_system.cc.o.d"
  "/root/repo/src/core/system.cc" "src/core/CMakeFiles/tea_core.dir/system.cc.o" "gcc" "src/core/CMakeFiles/tea_core.dir/system.cc.o.d"
  "/root/repo/src/core/tlb.cc" "src/core/CMakeFiles/tea_core.dir/tlb.cc.o" "gcc" "src/core/CMakeFiles/tea_core.dir/tlb.cc.o.d"
  "/root/repo/src/core/trace_io.cc" "src/core/CMakeFiles/tea_core.dir/trace_io.cc.o" "gcc" "src/core/CMakeFiles/tea_core.dir/trace_io.cc.o.d"
  "/root/repo/src/core/uncore.cc" "src/core/CMakeFiles/tea_core.dir/uncore.cc.o" "gcc" "src/core/CMakeFiles/tea_core.dir/uncore.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tea_common.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/tea_events.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/tea_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
