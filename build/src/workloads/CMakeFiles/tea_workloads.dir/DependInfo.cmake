
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/microkernels.cc" "src/workloads/CMakeFiles/tea_workloads.dir/microkernels.cc.o" "gcc" "src/workloads/CMakeFiles/tea_workloads.dir/microkernels.cc.o.d"
  "/root/repo/src/workloads/spec_like.cc" "src/workloads/CMakeFiles/tea_workloads.dir/spec_like.cc.o" "gcc" "src/workloads/CMakeFiles/tea_workloads.dir/spec_like.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/tea_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tea_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
