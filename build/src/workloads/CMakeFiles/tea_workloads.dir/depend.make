# Empty dependencies file for tea_workloads.
# This may be replaced when dependencies are built.
