file(REMOVE_RECURSE
  "CMakeFiles/tea_workloads.dir/microkernels.cc.o"
  "CMakeFiles/tea_workloads.dir/microkernels.cc.o.d"
  "CMakeFiles/tea_workloads.dir/spec_like.cc.o"
  "CMakeFiles/tea_workloads.dir/spec_like.cc.o.d"
  "libtea_workloads.a"
  "libtea_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tea_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
