# Empty dependencies file for fig8_frequency.
# This may be replaced when dependencies are built.
