file(REMOVE_RECURSE
  "CMakeFiles/fig8_frequency.dir/fig8_frequency.cpp.o"
  "CMakeFiles/fig8_frequency.dir/fig8_frequency.cpp.o.d"
  "fig8_frequency"
  "fig8_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
