file(REMOVE_RECURSE
  "CMakeFiles/overhead_measured.dir/overhead_measured.cpp.o"
  "CMakeFiles/overhead_measured.dir/overhead_measured.cpp.o.d"
  "overhead_measured"
  "overhead_measured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_measured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
