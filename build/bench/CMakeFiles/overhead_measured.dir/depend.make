# Empty dependencies file for overhead_measured.
# This may be replaced when dependencies are built.
