file(REMOVE_RECURSE
  "CMakeFiles/ablation_dtag_tea.dir/ablation_dtag_tea.cpp.o"
  "CMakeFiles/ablation_dtag_tea.dir/ablation_dtag_tea.cpp.o.d"
  "ablation_dtag_tea"
  "ablation_dtag_tea.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dtag_tea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
