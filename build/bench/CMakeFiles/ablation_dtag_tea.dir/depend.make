# Empty dependencies file for ablation_dtag_tea.
# This may be replaced when dependencies are built.
