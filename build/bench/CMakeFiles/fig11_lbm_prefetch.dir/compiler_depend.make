# Empty compiler generated dependencies file for fig11_lbm_prefetch.
# This may be replaced when dependencies are built.
