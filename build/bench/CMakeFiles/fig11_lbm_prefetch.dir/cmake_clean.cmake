file(REMOVE_RECURSE
  "CMakeFiles/fig11_lbm_prefetch.dir/fig11_lbm_prefetch.cpp.o"
  "CMakeFiles/fig11_lbm_prefetch.dir/fig11_lbm_prefetch.cpp.o.d"
  "fig11_lbm_prefetch"
  "fig11_lbm_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_lbm_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
