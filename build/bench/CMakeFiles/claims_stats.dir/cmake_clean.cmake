file(REMOVE_RECURSE
  "CMakeFiles/claims_stats.dir/claims_stats.cpp.o"
  "CMakeFiles/claims_stats.dir/claims_stats.cpp.o.d"
  "claims_stats"
  "claims_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claims_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
