# Empty dependencies file for claims_stats.
# This may be replaced when dependencies are built.
