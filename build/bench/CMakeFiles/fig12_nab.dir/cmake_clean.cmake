file(REMOVE_RECURSE
  "CMakeFiles/fig12_nab.dir/fig12_nab.cpp.o"
  "CMakeFiles/fig12_nab.dir/fig12_nab.cpp.o.d"
  "fig12_nab"
  "fig12_nab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_nab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
