# Empty compiler generated dependencies file for fig12_nab.
# This may be replaced when dependencies are built.
