file(REMOVE_RECURSE
  "CMakeFiles/fig3_event_hierarchy.dir/fig3_event_hierarchy.cpp.o"
  "CMakeFiles/fig3_event_hierarchy.dir/fig3_event_hierarchy.cpp.o.d"
  "fig3_event_hierarchy"
  "fig3_event_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_event_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
