# Empty compiler generated dependencies file for fig3_event_hierarchy.
# This may be replaced when dependencies are built.
