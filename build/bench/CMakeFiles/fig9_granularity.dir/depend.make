# Empty dependencies file for fig9_granularity.
# This may be replaced when dependencies are built.
