file(REMOVE_RECURSE
  "CMakeFiles/fig9_granularity.dir/fig9_granularity.cpp.o"
  "CMakeFiles/fig9_granularity.dir/fig9_granularity.cpp.o.d"
  "fig9_granularity"
  "fig9_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
