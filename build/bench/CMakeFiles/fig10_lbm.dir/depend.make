# Empty dependencies file for fig10_lbm.
# This may be replaced when dependencies are built.
