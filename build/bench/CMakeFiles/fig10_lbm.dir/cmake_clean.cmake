file(REMOVE_RECURSE
  "CMakeFiles/fig10_lbm.dir/fig10_lbm.cpp.o"
  "CMakeFiles/fig10_lbm.dir/fig10_lbm.cpp.o.d"
  "fig10_lbm"
  "fig10_lbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_lbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
