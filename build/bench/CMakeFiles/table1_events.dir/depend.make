# Empty dependencies file for table1_events.
# This may be replaced when dependencies are built.
