file(REMOVE_RECURSE
  "CMakeFiles/table1_events.dir/table1_events.cpp.o"
  "CMakeFiles/table1_events.dir/table1_events.cpp.o.d"
  "table1_events"
  "table1_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
