# Empty dependencies file for fig7_correlation.
# This may be replaced when dependencies are built.
