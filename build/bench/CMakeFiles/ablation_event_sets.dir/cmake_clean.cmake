file(REMOVE_RECURSE
  "CMakeFiles/ablation_event_sets.dir/ablation_event_sets.cpp.o"
  "CMakeFiles/ablation_event_sets.dir/ablation_event_sets.cpp.o.d"
  "ablation_event_sets"
  "ablation_event_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_event_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
