# Empty compiler generated dependencies file for ablation_event_sets.
# This may be replaced when dependencies are built.
