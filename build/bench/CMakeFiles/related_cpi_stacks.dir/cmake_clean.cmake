file(REMOVE_RECURSE
  "CMakeFiles/related_cpi_stacks.dir/related_cpi_stacks.cpp.o"
  "CMakeFiles/related_cpi_stacks.dir/related_cpi_stacks.cpp.o.d"
  "related_cpi_stacks"
  "related_cpi_stacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_cpi_stacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
