# Empty compiler generated dependencies file for related_cpi_stacks.
# This may be replaced when dependencies are built.
