file(REMOVE_RECURSE
  "CMakeFiles/fig6_top3_pics.dir/fig6_top3_pics.cpp.o"
  "CMakeFiles/fig6_top3_pics.dir/fig6_top3_pics.cpp.o.d"
  "fig6_top3_pics"
  "fig6_top3_pics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_top3_pics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
