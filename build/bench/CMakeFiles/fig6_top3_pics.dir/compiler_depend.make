# Empty compiler generated dependencies file for fig6_top3_pics.
# This may be replaced when dependencies are built.
