file(REMOVE_RECURSE
  "CMakeFiles/pics_tool.dir/pics_tool.cpp.o"
  "CMakeFiles/pics_tool.dir/pics_tool.cpp.o.d"
  "pics_tool"
  "pics_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pics_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
