# Empty dependencies file for pics_tool.
# This may be replaced when dependencies are built.
