# Empty compiler generated dependencies file for pipeline_stats.
# This may be replaced when dependencies are built.
