
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/profile_application.cpp" "examples/CMakeFiles/profile_application.dir/profile_application.cpp.o" "gcc" "examples/CMakeFiles/profile_application.dir/profile_application.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/tea_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/profilers/CMakeFiles/tea_profilers.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/tea_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tea_core.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/tea_events.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/tea_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tea_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
