file(REMOVE_RECURSE
  "CMakeFiles/multicore_profile.dir/multicore_profile.cpp.o"
  "CMakeFiles/multicore_profile.dir/multicore_profile.cpp.o.d"
  "multicore_profile"
  "multicore_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicore_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
