# Empty dependencies file for multicore_profile.
# This may be replaced when dependencies are built.
