file(REMOVE_RECURSE
  "CMakeFiles/pics_diff.dir/pics_diff.cpp.o"
  "CMakeFiles/pics_diff.dir/pics_diff.cpp.o.d"
  "pics_diff"
  "pics_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pics_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
