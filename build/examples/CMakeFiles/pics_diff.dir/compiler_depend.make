# Empty compiler generated dependencies file for pics_diff.
# This may be replaced when dependencies are built.
